// Multi-threaded authorization frontend stress tests.
//
// The contract under test (README "Threading model"): worker threads may
// call Kernel::Authorize / AuthorizeBatch concurrently with each other AND
// with control-plane mutations (SetGoal / SetProof, which invalidate the
// sharded decision cache), while the intern tables take concurrent
// interning from every side. These tests are the ThreadSanitizer targets
// wired into CI; they also assert end-state consistency so a lost
// invalidation (a stale cached verdict surviving a goal flip) fails even
// without TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/nexus.h"
#include "kernel/trace.h"
#include "nal/interner.h"
#include "nal/parser.h"
#include "net/node.h"
#include "net/remote_authority.h"
#include "net/transport.h"

namespace nexus::core {
namespace {

nal::Formula F(std::string_view text) {
  Result<nal::Formula> f = nal::ParseFormula(text);
  EXPECT_TRUE(f.ok()) << text << " -> " << f.status().ToString();
  return f.ok() ? *f : nullptr;
}

TEST(MtAuthzStressTest, ConcurrentAuthorizeVsSetGoalInvalidations) {
  Rng rng(7);
  tpm::Tpm tpm(rng);
  Nexus nexus(&tpm);
  kernel::Kernel& kernel = nexus.kernel();
  Engine& engine = nexus.engine();

  constexpr int kWorkers = 4;
  constexpr int kObjects = 8;
  constexpr int kItersPerWorker = 1500;
  constexpr int kGoalFlips = 400;

  kernel::ProcessId owner = *nexus.CreateProcess("owner", ToBytes("o"));
  // The provable goal (credential seeded below) and the unprovable one the
  // mutator flips to; a premise proof for `provable` never discharges it.
  nal::Formula provable = F("Certifier says ok(app)");
  nal::Formula unprovable = F("Certifier says nope(app)");
  engine.SayAs(nal::Principal("Certifier"), F("ok(app)"));

  // One subject per worker: subjects hash to their own decision-cache
  // shards, so the hit path runs genuinely in parallel.
  std::vector<kernel::ProcessId> subjects;
  std::vector<std::vector<kernel::AuthzRequest>> requests(kWorkers);
  for (int t = 0; t < kWorkers; ++t) {
    subjects.push_back(*nexus.CreateProcess("w" + std::to_string(t), ToBytes("w")));
  }
  for (int o = 0; o < kObjects; ++o) {
    std::string object = "obj" + std::to_string(o);
    ASSERT_TRUE(engine.RegisterObject(object, owner, kernel::kKernelProcessId).ok());
    ASSERT_TRUE(engine.SetGoal(owner, "use", object, provable).ok());
    for (int t = 0; t < kWorkers; ++t) {
      ASSERT_TRUE(
          engine.SetProof(subjects[t], "use", object, nal::proof::Premise(provable)).ok());
      requests[t].push_back(kernel::AuthzRequest::Of(subjects[t], "use", object));
    }
  }

  std::atomic<uint64_t> allows{0};
  std::atomic<uint64_t> denies{0};
  std::atomic<uint64_t> unexpected{0};
  std::vector<std::thread> threads;
  threads.reserve(kWorkers + 1);
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerWorker; ++i) {
        const kernel::AuthzRequest& request = requests[t][i % kObjects];
        Status status = kernel.Authorize(request);
        if (status.ok()) {
          ++allows;
        } else if (status.code() == ErrorCode::kPermissionDenied) {
          ++denies;  // Caught a goal-flip window: expected.
        } else {
          ++unexpected;
        }
      }
    });
  }
  // The mutator races setgoal invalidations (and the odd setproof, which
  // bumps state versions) against the workers' lookups.
  threads.emplace_back([&] {
    for (int i = 0; i < kGoalFlips; ++i) {
      std::string object = "obj" + std::to_string(i % kObjects);
      const nal::Formula& goal = (i % 2 == 0) ? unprovable : provable;
      EXPECT_TRUE(engine.SetGoal(owner, "use", object, goal).ok());
      if (i % 16 == 0) {
        EXPECT_TRUE(engine
                        .SetProof(subjects[i % kWorkers], "use", object,
                                  nal::proof::Premise(provable))
                        .ok());
      }
    }
    // Leave every goal provable for the post-quiescence check.
    for (int o = 0; o < kObjects; ++o) {
      EXPECT_TRUE(engine.SetGoal(owner, "use", "obj" + std::to_string(o), provable).ok());
    }
  });
  for (std::thread& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_GT(allows.load(), 0u);
  // Post-quiescence: every goal is provable again, so every request must
  // authorize. A stale deny cached past its invalidation fails here.
  for (int t = 0; t < kWorkers; ++t) {
    for (const kernel::AuthzRequest& request : requests[t]) {
      Status status = kernel.Authorize(request);
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
  }
  // Batch frontend under the same churned state.
  for (int t = 0; t < kWorkers; ++t) {
    for (const Status& status : kernel.AuthorizeBatch(requests[t])) {
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
  }
}

TEST(MtAuthzStressTest, ConcurrentInterningConvergesToOneIdPerFormula) {
  nal::Interner interner;
  constexpr int kWorkers = 4;
  constexpr int kFormulas = 64;
  // Each worker parses its own copies (distinct trees, distinct
  // addresses) of the same formula set and interns them repeatedly.
  std::vector<std::vector<nal::FormulaId>> ids(kWorkers,
                                               std::vector<nal::FormulaId>(kFormulas));
  std::vector<std::thread> threads;
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kFormulas; ++i) {
        nal::Formula f = F("P" + std::to_string(i % 7) + " says fact" + std::to_string(i) +
                           "(x" + std::to_string(t % 2) + ")");
        ids[t][i] = interner.Intern(f);
        // Re-interning the canonical node must be stable.
        EXPECT_EQ(interner.Intern(interner.Resolve(ids[t][i])), ids[t][i]);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int i = 0; i < kFormulas; ++i) {
    for (int t = 1; t < kWorkers; ++t) {
      // Workers 0 and 1 built different argument symbols (x0 vs x1); ids
      // must agree exactly between workers of the same parity and differ
      // across parities.
      if (t % 2 == 0) {
        EXPECT_EQ(ids[t][i], ids[0][i]) << i;
      } else {
        EXPECT_EQ(ids[t][i], ids[1][i]) << i;
        EXPECT_NE(ids[t][i], ids[0][i]) << i;
      }
    }
  }
}

TEST(MtAuthzStressTest, ConcurrentNameTableInternAndResolve) {
  kernel::NameTable table;
  constexpr int kWorkers = 4;
  constexpr int kNames = 200;
  std::vector<std::vector<uint32_t>> ids(kWorkers, std::vector<uint32_t>(kNames));
  std::vector<std::thread> threads;
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kNames; ++i) {
        std::string name = "file:/shared/" + std::to_string(i);
        ids[t][i] = table.Intern(name);
        // Reads race other workers' inserts; the returned view must be the
        // interned name, stable without any lock held.
        EXPECT_EQ(table.Name(ids[t][i]), name);
        EXPECT_EQ(table.Find(name), ids[t][i]);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 1; t < kWorkers; ++t) {
    EXPECT_EQ(ids[t], ids[0]);  // One id per name, process-wide.
  }
  EXPECT_EQ(table.size(), static_cast<size_t>(kNames) + 1);  // + reserved "".
}

TEST(MtAuthzStressTest, DecisionCacheShardsSurviveConcurrentChurn) {
  kernel::DecisionCache cache;
  constexpr int kWorkers = 4;
  constexpr int kIters = 4000;
  kernel::OpId op = kernel::InternOp("use");
  std::vector<kernel::ObjectId> objects;
  for (int o = 0; o < 8; ++o) {
    objects.push_back(kernel::InternObject("churn" + std::to_string(o)));
  }
  std::atomic<uint64_t> wrong_verdicts{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      kernel::ProcessId subject = 1000 + t;
      for (int i = 0; i < kIters; ++i) {
        kernel::AuthzRequest request{subject, op, objects[i % objects.size()]};
        // Each worker only ever inserts ALLOW for its own subject, so any
        // deny read back would be corruption across shards/subjects.
        uint64_t generation = cache.Generation(request);
        cache.InsertIfUnchanged(request, true, generation);
        std::optional<bool> cached = cache.Lookup(request);
        if (cached.has_value() && !*cached) {
          ++wrong_verdicts;
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kIters / 4; ++i) {
      cache.InvalidateSubregion(op, objects[i % objects.size()]);
      if (i % 64 == 0) {
        cache.Clear();
      }
    }
  });
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(wrong_verdicts.load(), 0u);
  kernel::DecisionCache::Stats stats = cache.stats();
  EXPECT_GT(stats.insertions, 0u);
  EXPECT_GT(stats.subregion_invalidations, 0u);
}

// THE parallel-miss-path acceptance test: two subjects whose authorization
// misses each require a remote-authority round trip run on two OS threads,
// and the simulated clock proves the round trips OVERLAPPED — both misses
// together cost one RTT, not two. Under the PR-3 engine monitor the second
// miss could not enter the engine until the first's round trip returned,
// so this completed in 2 RTTs by construction.
TEST(MtAuthzStressTest, TwoSubjectRemoteMissesOverlapInOneRtt) {
  Rng rng_a(11), rng_b(22);
  tpm::Tpm tpm_a(rng_a), tpm_b(rng_b);
  Nexus nexus_a(&tpm_a, NexusOptions{.seed = 1});
  Nexus nexus_b(&tpm_b, NexusOptions{.seed = 2});
  nexus_a.RegisterPeer("b", tpm_b.endorsement_public_key());
  nexus_b.RegisterPeer("a", tpm_a.endorsement_public_key());
  net::Transport transport(7);
  constexpr uint64_t kLatencyUs = 100;
  transport.SetLink("a", "b", net::LinkConfig{.latency_us = kLatencyUs, .drop_rate = 0.0});
  net::NetNode node_a(&nexus_a, &transport, "a");
  net::NetNode node_b(&nexus_b, &transport, "b");

  net::AuthorityService service(&node_b);
  LambdaAuthority session(
      [](const nal::Formula& f) {
        return f->kind() == nal::FormulaKind::kSays && f->speaker().base() == "Session";
      },
      [](const nal::Formula&) { return true; });
  service.AddAuthority(&session);
  net::RemoteAuthority remote(&node_a, "b", nullptr, /*default_timeout_us=*/1000000);
  nexus_a.guard().AddRemoteAuthority(&remote);
  nexus_a.guard().set_remote_query_timeout_us(1000000);

  kernel::ProcessId owner = *nexus_a.CreateProcess("owner", ToBytes("o"));
  // Two subjects on provably DISTINCT engine stripes (otherwise the
  // per-subject serialization — correct behavior — would mask the overlap
  // this test exists to observe).
  kernel::ProcessId s1 = *nexus_a.CreateProcess("s1", ToBytes("w"));
  kernel::ProcessId s2 = *nexus_a.CreateProcess("s2", ToBytes("w"));
  while (Engine::StripeOf(s2) == Engine::StripeOf(s1)) {
    s2 = *nexus_a.CreateProcess("s2", ToBytes("w"));
  }

  auto arm = [&](kernel::ProcessId subject, const std::string& object,
                 const std::string& user) {
    nal::Formula statement = F("Session says active(" + user + ")");
    EXPECT_TRUE(
        nexus_a.engine().RegisterObject(object, owner, kernel::kKernelProcessId).ok());
    EXPECT_TRUE(nexus_a.engine().SetGoal(owner, "use", object, statement).ok());
    EXPECT_TRUE(
        nexus_a.engine().SetProof(subject, "use", object, nal::proof::Authority(statement))
            .ok());
    return kernel::AuthzRequest::Of(subject, "use", object);
  };
  kernel::AuthzRequest warmup = arm(s1, "warmup", "warm");
  kernel::AuthzRequest r1 = arm(s1, "objA", "alice");
  kernel::AuthzRequest r2 = arm(s2, "objB", "bob");

  // Warm-up: establishes the attested channel (handshake + one vouch round
  // trip) single-threaded, so the concurrent phase below is pure data-plane.
  ASSERT_TRUE(nexus_a.kernel().Authorize(warmup).ok());
  uint64_t t0 = transport.now_us();

  // Rendezvous: no delivery (and no clock movement) until BOTH misses have
  // their VouchBatch request on the wire.
  transport.ArmPumpGate(2);
  Status st1, st2;
  std::thread w1([&] { st1 = nexus_a.kernel().Authorize(r1); });
  std::thread w2([&] { st2 = nexus_a.kernel().Authorize(r2); });
  w1.join();
  w2.join();

  EXPECT_TRUE(st1.ok()) << st1.ToString();
  EXPECT_TRUE(st2.ok()) << st2.ToString();
  // Both requests left at t0, both replies landed at t0 + 2*latency: ONE
  // round trip of wall-clock for two misses. The serial engine paid
  // t0 + 4*latency here.
  EXPECT_EQ(transport.now_us(), t0 + 2 * kLatencyUs);
  // And both misses really did consult the remote authority.
  EXPECT_EQ(remote.stats().queries, 3u);  // warmup + r1 + r2
}

// Authorization misses racing process/port lifecycle churn: the kernel's
// sharded process/port tables let spawn, kill, and port create/destroy run
// while worker threads miss (the PR-3 quiescence rule is gone). Workers
// also exercise Invoke(kProcRead) — procfs reads and the charged intern
// surface — mid-churn. TSan-clean is the real assertion; the end-state
// checks catch lost updates without it.
TEST(MtAuthzStressTest, AuthorizeMissesVsProcessAndPortLifecycleChurn) {
  Rng rng(13);
  tpm::Tpm tpm(rng);
  Nexus nexus(&tpm);
  kernel::Kernel& kernel = nexus.kernel();
  Engine& engine = nexus.engine();
  // Every Authorize below is a full engine miss: the point is the miss
  // path vs the tables, not cache hits.
  kernel.set_decision_cache_enabled(false);

  constexpr int kWorkers = 3;
  constexpr int kItersPerWorker = 400;
  constexpr int kChurnIters = 250;

  kernel::ProcessId owner = *nexus.CreateProcess("owner", ToBytes("o"));
  nal::Formula goal = F("Certifier says ok(app)");
  engine.SayAs(nal::Principal("Certifier"), F("ok(app)"));

  std::vector<kernel::ProcessId> subjects;
  std::vector<std::vector<kernel::AuthzRequest>> requests(kWorkers);
  for (int t = 0; t < kWorkers; ++t) {
    subjects.push_back(*nexus.CreateProcess("w" + std::to_string(t), ToBytes("w")));
    for (int o = 0; o < 4; ++o) {
      std::string object = "churn-obj" + std::to_string(t) + "-" + std::to_string(o);
      ASSERT_TRUE(engine.RegisterObject(object, owner, kernel::kKernelProcessId).ok());
      ASSERT_TRUE(engine.SetGoal(owner, "use", object, goal).ok());
      ASSERT_TRUE(
          engine.SetProof(subjects[t], "use", object, nal::proof::Premise(goal)).ok());
      requests[t].push_back(kernel::AuthzRequest::Of(subjects[t], "use", object));
    }
  }

  uint64_t generation_before = kernel.lifecycle_generation();
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> proc_reads{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerWorker; ++i) {
        Status status = kernel.Authorize(requests[t][i % requests[t].size()]);
        if (!status.ok()) {
          ++failures;
        }
        if (i % 16 == 0) {
          // A syscall through the interposition+procfs surface, mid-churn.
          kernel::IpcMessage msg;
          msg.AddString("/proc/kernel/name");
          kernel::IpcReply reply =
              kernel.Invoke(subjects[t], kernel::Syscall::kProcRead, msg);
          if (reply.status.ok()) {
            ++proc_reads;
          }
        }
      }
    });
  }
  threads.emplace_back([&] {
    uint64_t last_port_generation = 0;
    for (int i = 0; i < kChurnIters; ++i) {
      Result<kernel::ProcessId> pid = kernel.CreateProcess("ephemeral", ToBytes("e"));
      ASSERT_TRUE(pid.ok());
      Result<kernel::PortId> port = kernel.CreatePort(*pid);
      ASSERT_TRUE(port.ok());
      // Generation-stamped lookup: every port carries the lifecycle
      // generation of its creation, strictly increasing across churn.
      Result<uint64_t> stamp = kernel.PortGeneration(*port);
      ASSERT_TRUE(stamp.ok());
      EXPECT_GT(*stamp, last_port_generation);
      last_port_generation = *stamp;
      EXPECT_TRUE(kernel.ConnectPort(*pid, *port).ok());
      EXPECT_TRUE(kernel.HasChannel(*pid, *port));
      if (i % 2 == 0) {
        EXPECT_TRUE(kernel.DestroyPort(*port).ok());
      }
      EXPECT_TRUE(kernel.KillProcess(*pid).ok());  // Reaps remaining ports.
      EXPECT_FALSE(kernel.IsAlive(*pid));
    }
  });
  for (std::thread& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(proc_reads.load(), 0u);
  // Every lifecycle mutation stamped the generation counter.
  EXPECT_GE(kernel.lifecycle_generation(),
            generation_before + 3 * static_cast<uint64_t>(kChurnIters));
  // Post-quiescence: the ephemeral processes are gone, the subjects and
  // their verdicts are intact.
  for (int t = 0; t < kWorkers; ++t) {
    EXPECT_TRUE(kernel.IsAlive(subjects[t]));
    for (const kernel::AuthzRequest& request : requests[t]) {
      EXPECT_TRUE(kernel.Authorize(request).ok());
    }
  }
}

// Flight-recorder ring contract under TSan: many writer threads emit into
// their per-thread rings (wrapping them several times over) while readers
// concurrently merge Recent()/ForTrace() views and Clear() races both.
// Readers must only ever observe fully-written events — the per-slot
// seqlock drops torn slots — and nothing may crash or leak a dead ring.
TEST(MtAuthzStressTest, TraceRingConcurrentEmitReadClear) {
  kernel::FlightRecorder& recorder = kernel::FlightRecorder::Global();
  recorder.Clear();
  recorder.set_enabled(true);

  constexpr int kEmitters = 4;
  constexpr int kEventsPerEmitter = 40000;  // 40x ring capacity: heavy wrap.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_events{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kEmitters; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kEventsPerEmitter; ++i) {
        kernel::TraceEvent e;
        e.trace_id = recorder.NewTraceId();
        e.subject = static_cast<kernel::ProcessId>(t + 1);
        // Payload pattern a reader can validate: aux mirrors trace_id, so
        // a torn slot (words from two different writes) is detectable.
        e.aux = e.trace_id;
        e.stage = kernel::TraceStage::kGuardCheck;
        recorder.Emit(e);
      }
    });
  }
  // Two readers merging all rings while the writers wrap them.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&recorder, &stop, &bad_events] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const kernel::TraceEvent& e : recorder.Recent()) {
          if (e.aux != e.trace_id) {
            ++bad_events;
          }
        }
        std::vector<kernel::TraceEvent> one = recorder.ForTrace(17);
        if (one.size() > 1) {
          ++bad_events;  // A trace id is allocated to exactly one event here.
        }
      }
    });
  }
  // A clearer racing everyone.
  threads.emplace_back([&recorder, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      recorder.Clear();
      std::this_thread::yield();
    }
  });

  for (int t = 0; t < kEmitters; ++t) {
    threads[static_cast<size_t>(t)].join();
  }
  stop.store(true, std::memory_order_relaxed);
  for (size_t i = kEmitters; i < threads.size(); ++i) {
    threads[i].join();
  }

  recorder.set_enabled(false);
  EXPECT_EQ(bad_events.load(), 0u);
  // Emissions landed (heads are monotonic even across Clear()).
  EXPECT_GE(recorder.events_emitted(),
            static_cast<uint64_t>(kEmitters) * kEventsPerEmitter);
  recorder.Clear();
}

// Trace-id propagation under concurrency: parallel traced Authorize calls
// each produce a self-consistent chain — every event of a given trace id
// names the same subject (ids never bleed across threads).
TEST(MtAuthzStressTest, ConcurrentTracedAuthorizeKeepsChainsSeparate) {
  Rng rng(23);
  tpm::Tpm tpm(rng);
  Nexus nexus(&tpm);
  kernel::Kernel& kernel = nexus.kernel();

  constexpr int kWorkers = 4;
  constexpr int kIters = 300;
  std::vector<kernel::ProcessId> subjects;
  for (int t = 0; t < kWorkers; ++t) {
    subjects.push_back(*nexus.CreateProcess("tw" + std::to_string(t), ToBytes("w")));
  }

  kernel::FlightRecorder& recorder = kernel::FlightRecorder::Global();
  recorder.Clear();
  recorder.set_enabled(true);

  std::vector<std::thread> threads;
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&kernel, &subjects, t] {
      for (int i = 0; i < kIters; ++i) {
        // Distinct objects defeat the decision cache so every call walks
        // the full probe -> miss -> verdict pipeline.
        kernel::AuthzRequest request{
            subjects[static_cast<size_t>(t)], kernel::InternOp("use"),
            kernel::InternObject("trace-obj:" + std::to_string(t) + ":" + std::to_string(i))};
        EXPECT_TRUE(kernel.Authorize(request).ok());
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  recorder.set_enabled(false);

  std::map<uint64_t, kernel::ProcessId> chain_subject;
  for (const kernel::TraceEvent& e : recorder.Recent()) {
    if (e.trace_id == 0 || e.subject == 0) {
      continue;
    }
    auto [it, inserted] = chain_subject.emplace(e.trace_id, e.subject);
    if (!inserted) {
      EXPECT_EQ(it->second, e.subject) << "trace id bled across subjects";
    }
  }
  EXPECT_FALSE(chain_subject.empty());
  recorder.Clear();
}

}  // namespace
}  // namespace nexus::core
