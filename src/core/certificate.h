// Label externalization (§2.4).
//
// A label leaving its Nexus instance becomes an X.509-style certificate:
// the statement is re-attributed to the fully-qualified principal
//   TPM.<ek> . nexus.<nk> . boot.<nbk-hash> . ipd.<pid>
// and signed with the Nexus kernel key NK; a companion attestation (the
// TPM's EK signature over NK and the boot-time PCR composite) lets a remote
// verifier walk the chain "TPM says kernel says labelstore says process
// says S". Verification needs no connection to the issuing machine.
#ifndef NEXUS_CORE_CERTIFICATE_H_
#define NEXUS_CORE_CERTIFICATE_H_

#include <string>

#include "crypto/rsa.h"
#include "nal/formula.h"
#include "util/bytes.h"
#include "util/status.h"

namespace nexus::core {

struct Certificate {
  // The externalized statement with fully-qualified speaker.
  nal::Formula statement;
  // Kernel-key signature over the serialized statement.
  Bytes nk_signature;
  crypto::RsaPublicKey nk_public;
  // TPM endorsement: EK signature binding (NK public key, PCR composite).
  Bytes ek_attestation;
  Bytes pcr_composite;
  crypto::RsaPublicKey ek_public;

  Bytes Serialize() const;
  static Result<Certificate> Deserialize(ByteView data);
};

// Builds the EK attestation message for (nk, composite); used by issuing
// and verifying sides.
Bytes NkBindingMessage(const crypto::RsaPublicKey& nk, ByteView pcr_composite);

// Short stable identity for a public key: the first 8 hex chars of
// SHA-256(serialized key), as used in external principal names.
std::string ShortKeyId(const crypto::RsaPublicKey& key);

// The fully-qualified external kernel principal for a verified chain:
// tpm.<ek8>.nexus.<nk8>.boot.<nbk>. Both the issuing side (naming itself)
// and the verifying side (naming an attested peer) must build this chain
// the same way.
nal::Principal ExternalPrincipalFor(const crypto::RsaPublicKey& ek,
                                    const crypto::RsaPublicKey& nk, const std::string& nbk_id);

// The byte string the NK signs for a given statement.
Bytes CertificateStatementMessage(const nal::Formula& statement);

// Verifies both signatures in the chain. On success returns the statement,
// which the caller may import into a labelstore. `expected_composite`, if
// non-empty, additionally pins the software configuration (hash-based trust
// in the kernel); leave empty to accept any Nexus the EK vouches for.
Result<nal::Formula> VerifyCertificate(const Certificate& cert,
                                       const crypto::RsaPublicKey& trusted_ek,
                                       ByteView expected_composite = {});

}  // namespace nexus::core

#endif  // NEXUS_CORE_CERTIFICATE_H_
