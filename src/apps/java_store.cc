#include "apps/java_store.h"

#include "crypto/sha256.h"

namespace nexus::apps {

Bytes ObjectStoreImage::Serialize() const {
  Bytes out;
  AppendU32(out, static_cast<uint32_t>(objects.size()));
  for (const StoredObject& obj : objects) {
    AppendU32(out, static_cast<uint32_t>(obj.fields.size()));
    for (size_t i = 0; i < obj.fields.size(); ++i) {
      out.push_back(obj.field_tags[i]);
      AppendU64(out, static_cast<uint64_t>(obj.fields[i]));
    }
  }
  return out;
}

Result<ObjectStoreImage> ObjectStoreImage::Deserialize(ByteView data,
                                                       bool validate_invariants) {
  ByteReader reader(data);
  Result<uint32_t> count = reader.ReadU32();
  if (!count.ok()) {
    return count.status();
  }
  ObjectStoreImage image;
  for (uint32_t i = 0; i < *count; ++i) {
    Result<uint32_t> fields = reader.ReadU32();
    if (!fields.ok()) {
      return fields.status();
    }
    StoredObject obj;
    for (uint32_t f = 0; f < *fields; ++f) {
      Result<uint8_t> tag = reader.ReadU8();
      if (!tag.ok()) {
        return tag.status();
      }
      Result<uint64_t> value = reader.ReadU64();
      if (!value.ok()) {
        return value.status();
      }
      obj.field_tags.push_back(*tag);
      obj.fields.push_back(static_cast<int64_t>(*value));
    }
    if (validate_invariants) {
      // The slow path: per-field type invariants, the work a typesafe VM
      // skips when the producer was itself typesafe.
      for (size_t f = 0; f < obj.fields.size(); ++f) {
        uint8_t tag = obj.field_tags[f];
        int64_t v = obj.fields[f];
        bool ok = false;
        switch (tag) {
          case 0:  // boolean
            ok = v == 0 || v == 1;
            break;
          case 1:  // byte
            ok = v >= -128 && v <= 127;
            break;
          case 2:  // short
            ok = v >= -32768 && v <= 32767;
            break;
          case 3:  // int
            ok = v >= INT32_MIN && v <= INT32_MAX;
            break;
          case 4:  // long
            ok = true;
            break;
          default:
            ok = false;
        }
        if (!ok) {
          return InvalidArgument("type invariant violated at object " + std::to_string(i) +
                                 " field " + std::to_string(f));
        }
      }
    }
    image.objects.push_back(std::move(obj));
  }
  return image;
}

Result<Bytes> JavaObjectStore::Export(const ObjectStoreImage& image) {
  Bytes data = image.Serialize();
  Result<core::LabelHandle> label = nexus_->engine().SayFormula(
      self_, nal::FormulaNode::Pred("producedByTypesafeVM",
                                    {nal::Term::String(crypto::Sha256Hex(data))}));
  if (!label.ok()) {
    return label.status();
  }
  return data;
}

Result<ObjectStoreImage> JavaObjectStore::Import(ByteView data,
                                                 const std::vector<nal::Formula>& credentials,
                                                 bool* used_fast_path) {
  std::string hash = crypto::Sha256Hex(data);
  bool attested = false;
  for (const nal::Formula& cred : credentials) {
    if (cred->kind() == nal::FormulaKind::kSays &&
        cred->child1()->kind() == nal::FormulaKind::kPred &&
        cred->child1()->pred_name() == "producedByTypesafeVM" &&
        cred->child1()->args().size() == 1 &&
        cred->child1()->args()[0].kind() == nal::TermKind::kString &&
        cred->child1()->args()[0].text() == hash) {
      attested = true;
      break;
    }
  }
  if (used_fast_path != nullptr) {
    *used_fast_path = attested;
  }
  return ObjectStoreImage::Deserialize(data, /*validate_invariants=*/!attested);
}

}  // namespace nexus::apps
