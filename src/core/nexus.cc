#include "core/nexus.h"

#include "crypto/sha256.h"

namespace nexus::core {

namespace {

constexpr std::string_view kFirmwareImage = "nexus-sim-firmware-v1";
constexpr std::string_view kBootLoaderImage = "nexus-sim-bootloader-v1";
constexpr std::string_view kKernelImage = "nexus-sim-kernel-v1";

std::string ShortId(ByteView data) { return crypto::Sha256Hex(data).substr(0, 8); }

}  // namespace

Nexus::Nexus(tpm::Tpm* tpm, const NexusOptions& options)
    : tpm_(tpm), rng_(options.seed), default_guard_(&kernel_), engine_(&kernel_, &default_guard_) {
  // --- Boot sequence (§3.4): measure the static root of trust.
  tpm_->PowerCycle();
  if (options.measure_boot) {
    tpm_->MeasureAndExtend(kPcrFirmware, ToBytes(kFirmwareImage));
    tpm_->MeasureAndExtend(kPcrBootLoader, ToBytes(kBootLoaderImage));
    tpm_->MeasureAndExtend(kPcrKernel, ToBytes(kKernelImage));
  }
  const std::vector<int> policy_pcrs = {kPcrFirmware, kPcrBootLoader, kPcrKernel};
  boot_composite_ = tpm_->ReadComposite(policy_pcrs).value();

  if (!tpm_->IsOwned()) {
    // First boot: take ownership and mint the Nexus key bound to this PCR
    // state. A modified kernel produces different PCRs and cannot reach it.
    tpm_->TakeOwnership(rng_, policy_pcrs);
    nk_ = crypto::GenerateRsaKeyPair(rng_, options.nk_bits);
    Bytes nk_material;
    AppendLengthPrefixed(nk_material, nk_.private_key.n.ToBytes());
    AppendLengthPrefixed(nk_material, nk_.private_key.e.ToBytes());
    AppendLengthPrefixed(nk_material, nk_.private_key.d.ToBytes());
    Result<Bytes> sealed = tpm_->Seal(nk_material, policy_pcrs);
    nk_seal_blob_ = sealed.ok() ? *sealed : Bytes{};
    tpm_->NvDefine(/*index=*/1, nk_seal_blob_.size(), /*pcr_bound=*/true);
    tpm_->NvWrite(1, nk_seal_blob_);
  } else {
    // Later boot: recover NK by unsealing — only possible with matching
    // PCRs.
    Result<Bytes> blob = tpm_->NvRead(1);
    if (blob.ok()) {
      Result<Bytes> material = tpm_->Unseal(*blob);
      if (material.ok()) {
        ByteReader reader(*material);
        Bytes n = reader.ReadLengthPrefixed().value();
        Bytes e = reader.ReadLengthPrefixed().value();
        Bytes d = reader.ReadLengthPrefixed().value();
        nk_.private_key.n = crypto::BigNum::FromBytes(n);
        nk_.private_key.e = crypto::BigNum::FromBytes(e);
        nk_.private_key.d = crypto::BigNum::FromBytes(d);
        nk_.public_key = nk_.private_key.PublicKey();
      }
    }
    if (nk_.public_key.n.IsZero()) {
      // Unreachable in a healthy boot; mint a fresh NK so the instance is
      // at least self-consistent (certificates will not chain to old ones).
      nk_ = crypto::GenerateRsaKeyPair(rng_, options.nk_bits);
    }
  }

  // The boot key identifier names this unique boot instantiation.
  Bytes nbk_material = nk_.public_key.Serialize();
  AppendU64(nbk_material, tpm_->boot_counter());
  nbk_id_ = ShortId(nbk_material);

  // TPM-side endorsement of NK: "TPM says kernel ...".
  Result<Bytes> attestation = tpm_->SignWithEk(NkBindingMessage(nk_.public_key, boot_composite_));
  nk_ek_attestation_ = attestation.ok() ? *attestation : Bytes{};

  // --- Construct the system processes.
  kernel_.set_engine(&engine_);
  fs_ = std::make_unique<kernel::FileServer>(&kernel_);
  Result<kernel::ProcessId> fs_pid = CreateProcess("filesystem", ToBytes("nexus-fs-v1"));
  // The fileserver claims its RESERVED boot port (kernel/syscall_ports.h):
  // the port id is part of the ABI, not a boot-order accident.
  fs_port_ = kernel::kFsBootPort;
  kernel_.ClaimBootPort(fs_port_, *fs_pid, fs_.get());
  engine_.SayAs(kernel_.KernelPrincipal(),
                nal::FormulaNode::SpeaksFor(nal::Principal("IPC").Sub(std::to_string(fs_port_)),
                                            kernel_.ProcessPrincipal(*fs_pid)));
  kernel_.set_fs_port(fs_port_);
}

Result<kernel::ProcessId> Nexus::CreateProcess(const std::string& name, ByteView binary,
                                               kernel::ProcessId parent) {
  Result<kernel::ProcessId> pid = kernel_.CreateProcess(name, binary, parent);
  if (!pid.ok()) {
    return pid;
  }
  // Syscall channels are the RESERVED per-syscall ports now — shared by
  // every process and existing from cycle zero — so there is no per-process
  // syscall port to create or to bind a speaksfor statement to.
  nal::Principal nexus = kernel_.KernelPrincipal();
  // Nexus says launchHash(/proc/ipd/<pid>, "<hex>").
  const crypto::Sha256Digest hash = crypto::Sha256::Hash(binary);
  engine_.SayAs(nexus,
                nal::FormulaNode::Pred(
                    "launchHash", {nal::Term::Symbol(kernel::Kernel::ProcPath(*pid)),
                                   nal::Term::String(HexEncode(ByteView(hash.data(), hash.size())))}));
  return pid;
}

Result<kernel::PortId> Nexus::CreatePort(kernel::ProcessId owner) {
  Result<kernel::PortId> port = kernel_.CreatePort(owner);
  if (!port.ok()) {
    return port;
  }
  nal::Principal port_principal = nal::Principal("IPC").Sub(std::to_string(*port));
  engine_.SayAs(kernel_.KernelPrincipal(),
                nal::FormulaNode::SpeaksFor(port_principal, kernel_.ProcessPrincipal(owner)));
  return port;
}

nal::Principal Nexus::ExternalKernelPrincipal() const {
  return ExternalPrincipalFor(tpm_->endorsement_public_key(), nk_.public_key, nbk_id_);
}

Result<Certificate> Nexus::ExternalizeLabel(kernel::ProcessId pid, LabelHandle handle) {
  Result<nal::Formula> label = engine_.StoreFor(pid).Get(handle);
  if (!label.ok()) {
    return label.status();
  }
  // Requalify the speaker: the local prefix "Nexus" becomes the TPM-rooted
  // external chain, so remote verifiers see
  //   tpm.<ek>.nexus.<nk>.boot.<nbk>.ipd.<pid> says S.
  const nal::Principal& local = (*label)->speaker();
  nal::Principal external = ExternalKernelPrincipal();
  if (local.base() != kernel_.KernelPrincipal().base()) {
    return FailedPrecondition("only locally attributed labels can be externalized");
  }
  for (const std::string& tag : local.path()) {
    external = external.Sub(tag);
  }
  Certificate cert;
  cert.statement = nal::FormulaNode::Says(external, (*label)->child1());
  cert.nk_public = nk_.public_key;
  cert.nk_signature =
      crypto::RsaSign(nk_.private_key, CertificateStatementMessage(cert.statement));
  cert.ek_attestation = nk_ek_attestation_;
  cert.pcr_composite = boot_composite_;
  cert.ek_public = tpm_->endorsement_public_key();
  return cert;
}

Result<LabelHandle> Nexus::ImportCertificate(kernel::ProcessId pid, const Certificate& cert,
                                             const crypto::RsaPublicKey& trusted_ek) {
  Result<nal::Formula> statement = VerifyCertificate(cert, trusted_ek);
  if (!statement.ok()) {
    return statement.status();
  }
  return engine_.StoreFor(pid).InsertLabel(*statement);
}

Status Nexus::RegisterPeer(const std::string& name, const crypto::RsaPublicKey& ek) {
  if (name.empty() || ek.n.IsZero()) {
    return InvalidArgument("peer registration needs a name and a non-trivial EK");
  }
  auto it = peers_.find(name);
  if (it != peers_.end() && !(it->second == ek)) {
    return AlreadyExists("peer " + name + " already registered with a different EK");
  }
  peers_[name] = ek;
  return OkStatus();
}

Result<crypto::RsaPublicKey> Nexus::PeerEk(const std::string& name) const {
  auto it = peers_.find(name);
  if (it == peers_.end()) {
    return NotFound("no registered peer named " + name);
  }
  return it->second;
}

bool Nexus::IsTrustedPeerEk(const crypto::RsaPublicKey& ek) const {
  for (const auto& [name, peer_ek] : peers_) {
    if (peer_ek == ek) {
      return true;
    }
  }
  return false;
}

Result<std::string> Nexus::PeerNameForEk(const crypto::RsaPublicKey& ek) const {
  for (const auto& [name, peer_ek] : peers_) {
    if (peer_ek == ek) {
      return name;
    }
  }
  return NotFound("EK does not belong to any registered peer");
}

Result<LabelHandle> Nexus::ImportPeerCertificate(kernel::ProcessId pid,
                                                 const Certificate& cert) {
  if (!IsTrustedPeerEk(cert.ek_public)) {
    return Unauthenticated("certificate EK is not a registered peer trust anchor");
  }
  const std::string digest = crypto::Sha256Hex(cert.Serialize());
  auto seen = imported_certs_.find({pid, digest});
  if (seen != imported_certs_.end()) {
    return seen->second;  // Replayed/duplicate delivery: idempotent.
  }
  Result<LabelHandle> handle = ImportCertificate(pid, cert, cert.ek_public);
  if (handle.ok()) {
    imported_certs_[{pid, digest}] = *handle;
    imported_order_.push_back({pid, digest});
    while (imported_order_.size() > kImportedCertCap) {
      imported_certs_.erase(imported_order_.front());
      imported_order_.pop_front();
    }
  }
  return handle;
}

Bytes Nexus::NkSign(ByteView message) const { return crypto::RsaSign(nk_.private_key, message); }

Result<Bytes> Nexus::NkDecrypt(ByteView ciphertext) const {
  return crypto::RsaDecrypt(nk_.private_key, ciphertext);
}

}  // namespace nexus::core
