// Workload harness + trace auditor tests.
//
// Three layers:
//   1. Plumbing: FlightRecorder::Drain cursors (incremental harvest, drop
//      accounting on wraparound), MutationLog drain, zipf determinism.
//   2. Auditor negative paths on HAND-BUILT event streams — each violation
//      family (stale generation, non-serializable verdict, guard bypass,
//      interposition bypass, future generation) is flagged, and the
//      corresponding clean stream is not. The auditor never touches the
//      kernel here, so each check's trigger condition is exact.
//   3. End-to-end: the WorkloadDriver soaking real scenarios with
//      goal-flip churn stays violation-free, and injected faults are
//      caught. The soak scales via NEXUS_SOAK_* env vars (CI runs the
//      acceptance shape: 4 threads / 100k calls / 1M subjects).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "apps/scenario_adapters.h"
#include "harness/auditor.h"
#include "harness/workload.h"
#include "harness/zipf.h"
#include "kernel/trace.h"
#include "kernel/types.h"
#include "util/rng.h"

namespace nexus {
namespace {

using harness::TraceAuditor;
using harness::WorkloadConfig;
using harness::WorkloadDriver;
using harness::WorkloadReport;
using harness::ZipfSampler;
using kernel::FlightRecorder;
using kernel::MutationLog;
using kernel::MutationRecord;
using kernel::TraceEvent;
using kernel::TraceStage;

std::string SampleDump(const TraceAuditor::Report& report) {
  std::string out = report.Summary();
  for (const TraceAuditor::Violation& v : report.samples) {
    out += "\n  [" + v.kind + "] " + v.detail;
  }
  return out;
}

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' ? std::strtoull(value, nullptr, 10)
                                            : fallback;
}

// ---------------------------------------------------------------- Zipf

TEST(ZipfSamplerTest, DeterministicFromSeed) {
  ZipfSampler zipf(1000, 0.99);
  Rng a(12345), b(12345);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(zipf.Sample(a), zipf.Sample(b));
  }
}

TEST(ZipfSamplerTest, SkewFavorsLowRanksAndStaysBounded) {
  const uint64_t n = 100;
  ZipfSampler skewed(n, 0.99);
  ZipfSampler uniform(n, 0.0);
  Rng rng(7);
  uint64_t hot_skewed = 0, hot_uniform = 0;
  const int kSamples = 10'000;
  for (int i = 0; i < kSamples; ++i) {
    uint64_t s = skewed.Sample(rng);
    ASSERT_LT(s, n);
    if (s == 0) {
      ++hot_skewed;
    }
    uint64_t u = uniform.Sample(rng);
    ASSERT_LT(u, n);
    if (u == 0) {
      ++hot_uniform;
    }
  }
  // Rank 0 carries ~19% of mass at theta=.99/n=100, ~1% uniform.
  EXPECT_GT(hot_skewed, kSamples / 10);
  EXPECT_LT(hot_uniform, kSamples / 20);
}

// ------------------------------------------------- FlightRecorder drain

TEST(FlightRecorderDrainTest, IncrementalCursorThenWraparoundDropAccounting) {
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Clear();
  recorder.set_enabled(true);

  FlightRecorder::DrainCursor cursor;
  std::vector<FlightRecorder::DrainedSegment> segments;
  recorder.Drain(&cursor, &segments);  // Position past any prior tests' events.

  const kernel::ProcessId kMarker = 0xD0A1'0001;
  auto emit = [&](uint64_t count) {
    kernel::TraceScope scope;
    ASSERT_TRUE(scope.active());
    for (uint64_t i = 0; i < count; ++i) {
      TraceEvent e;
      e.trace_id = scope.id();
      e.subject = kMarker;
      e.op = static_cast<kernel::OpId>(i);
      e.stage = TraceStage::kSyscall;
      recorder.Emit(e);
    }
  };

  emit(10);
  segments.clear();
  FlightRecorder::DrainStats stats = recorder.Drain(&cursor, &segments);
  uint64_t mine = 0;
  for (const auto& segment : segments) {
    for (const TraceEvent& e : segment.events) {
      if (e.subject == kMarker) {
        ++mine;
      }
    }
  }
  EXPECT_EQ(mine, 10u);
  EXPECT_EQ(stats.dropped, 0u);

  // Nothing new: the cursor holds its position.
  segments.clear();
  stats = recorder.Drain(&cursor, &segments);
  for (const auto& segment : segments) {
    for (const TraceEvent& e : segment.events) {
      EXPECT_NE(e.subject, kMarker);
    }
  }

  // Overrun this thread's 256-slot ring: the drain recovers the newest
  // capacity-ful and reports the overwritten remainder as dropped.
  const uint64_t kBurst = FlightRecorder::kRingCapacity + 100;
  emit(kBurst);
  segments.clear();
  stats = recorder.Drain(&cursor, &segments);
  mine = 0;
  for (const auto& segment : segments) {
    for (const TraceEvent& e : segment.events) {
      if (e.subject == kMarker) {
        ++mine;
      }
    }
  }
  EXPECT_EQ(mine, FlightRecorder::kRingCapacity);
  EXPECT_GE(stats.dropped, kBurst - FlightRecorder::kRingCapacity);

  recorder.set_enabled(false);
}

TEST(MutationLogTest, DrainFromIsIncremental) {
  MutationLog& log = MutationLog::Global();
  log.Clear();
  log.set_enabled(true);
  auto append = [&](kernel::OpId op) {
    MutationRecord r;
    r.kind = kernel::MutationKind::kSetGoal;
    r.op = op;
    r.obj = 1;
    r.generations = {1};
    log.Append(std::move(r));
  };
  append(1);
  append(2);
  append(3);
  uint64_t cursor = 0;
  std::vector<MutationRecord> drained;
  log.DrainFrom(&cursor, &drained);
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_LT(drained[0].seq, drained[2].seq);
  append(4);
  drained.clear();
  log.DrainFrom(&cursor, &drained);
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].op, 4u);
  log.set_enabled(false);
}

// ----------------------------------------------- Auditor negative paths

constexpr kernel::OpId kOp = 11;
constexpr kernel::ObjectId kObj = 22;
constexpr nal::FormulaId kAllowGoal = 42;
constexpr nal::FormulaId kDenyGoal = 43;
constexpr kernel::ProcessId kHolder = 7;
constexpr kernel::ProcessId kStranger = 99;

TraceAuditor::Config SmallConfig() {
  TraceAuditor::Config config;
  config.cache_shards = 2;
  config.cache_subregions = 4;
  return config;
}

TraceAuditor MakeAuditor(TraceAuditor::Config config = TraceAuditor::Config()) {
  TraceAuditor auditor(config);
  const kernel::ProcessId holders[] = {kHolder};
  auditor.AuditPair(kOp, kObj, kAllowGoal, /*initial_goal_id=*/0, holders);
  return auditor;
}

MutationRecord GoalMutation(uint64_t seq, nal::FormulaId goal, uint64_t gen) {
  MutationRecord r;
  r.seq = seq;
  r.kind = kernel::MutationKind::kSetGoal;
  r.subject = 1;
  r.op = kOp;
  r.obj = kObj;
  r.detail = goal;
  r.generations = {gen, gen};  // Both shards of SmallConfig.
  return r;
}

TraceEvent Ev(uint64_t trace, uint64_t ts, TraceStage stage, kernel::ProcessId subject,
              uint64_t gen, uint8_t verdict = kernel::kTraceVerdictNone,
              uint16_t flags = 0, uint64_t aux = 0) {
  TraceEvent e;
  e.trace_id = trace;
  e.timestamp = ts;
  e.subject = subject;
  e.op = kOp;
  e.obj = kObj;
  e.generation = gen;
  e.verdict = verdict;
  e.flags = flags;
  e.aux = aux;
  e.stage = stage;
  return e;
}

TEST(TraceAuditorTest, CleanChainPassesAllChecks) {
  TraceAuditor auditor = MakeAuditor(SmallConfig());
  const MutationRecord mutations[] = {GoalMutation(1, kAllowGoal, 2)};
  auditor.IngestMutations(mutations);
  const TraceEvent events[] = {
      Ev(100, 1, TraceStage::kCacheProbe, kHolder, 2, 0, kernel::kTraceFlagCacheMiss),
      Ev(100, 2, TraceStage::kEngineMiss, kHolder, 0),
      Ev(100, 3, TraceStage::kGuardCheck, kHolder, kAllowGoal),
      Ev(100, 4, TraceStage::kVerdict, kHolder, 2, kernel::kTraceVerdictAllow),
      Ev(101, 5, TraceStage::kSyscall, kHolder, 0),  // Terminator: chain complete.
  };
  auditor.IngestSegment(0, 1, events);
  TraceAuditor::Report report = auditor.Finish();
  EXPECT_TRUE(report.clean()) << report.Summary();
  EXPECT_EQ(report.verdicts_checked, 1u);
  EXPECT_GE(report.complete_chains, 1u);
}

TEST(TraceAuditorTest, StaleGenerationVerdictFlagged) {
  TraceAuditor auditor = MakeAuditor(SmallConfig());
  const MutationRecord mutations[] = {GoalMutation(1, kAllowGoal, 2),
                                      GoalMutation(2, kDenyGoal, 5)};
  auditor.IngestMutations(mutations);
  // Chain A observes generation 5; chain B on the SAME ring then reports a
  // verdict at generation 2 — it outlived the invalidation.
  const TraceEvent events[] = {
      Ev(100, 1, TraceStage::kCacheProbe, kHolder, 5, 0, kernel::kTraceFlagCacheMiss),
      Ev(100, 2, TraceStage::kVerdict, kHolder, 5, kernel::kTraceVerdictDeny),
      Ev(101, 3, TraceStage::kCacheProbe, kHolder, 2, 0, kernel::kTraceFlagCacheHit),
      Ev(101, 4, TraceStage::kVerdict, kHolder, 2, kernel::kTraceVerdictAllow),
  };
  auditor.IngestSegment(0, 1, events);
  TraceAuditor::Report report = auditor.Finish();
  EXPECT_GE(report.stale_generation_violations, 1u) << report.Summary();
}

TEST(TraceAuditorTest, NonSerializableVerdictsFlagged) {
  TraceAuditor auditor = MakeAuditor(SmallConfig());
  const MutationRecord mutations[] = {GoalMutation(1, kAllowGoal, 2)};
  auditor.IngestMutations(mutations);
  // An allow for a subject holding no proof: no serial replay produces it.
  const TraceEvent stranger_allow[] = {
      Ev(100, 1, TraceStage::kCacheProbe, kStranger, 2, 0, kernel::kTraceFlagCacheMiss),
      Ev(100, 2, TraceStage::kVerdict, kStranger, 2, kernel::kTraceVerdictAllow),
      // A deny for a holder while the allow goal is the only admissible
      // state: equally non-serializable.
      Ev(101, 3, TraceStage::kCacheProbe, kHolder, 2, 0, kernel::kTraceFlagCacheHit),
      Ev(101, 4, TraceStage::kVerdict, kHolder, 2, kernel::kTraceVerdictDeny),
  };
  auditor.IngestSegment(0, 1, stranger_allow);
  TraceAuditor::Report report = auditor.Finish();
  EXPECT_EQ(report.serializability_violations, 2u) << report.Summary();
}

TEST(TraceAuditorTest, GoalFlipWindowAdmitsBothStates) {
  // A verdict whose window spans a goal flip may legitimately show either
  // state — and the install-before-bump successor is admissible too.
  TraceAuditor auditor = MakeAuditor(SmallConfig());
  const MutationRecord mutations[] = {GoalMutation(1, kAllowGoal, 2),
                                      GoalMutation(2, kDenyGoal, 5)};
  auditor.IngestMutations(mutations);
  // Each chain on its own ring: this test is about window admissibility,
  // and generation stamps within ONE ring must be monotone (a chain
  // observing gen 2 after its ring saw gen 5 is a real violation).
  const TraceEvent allow_in_window[] = {
      // Window [2, 5]: allow (state at 2) and deny (flip inside) both OK.
      Ev(100, 1, TraceStage::kCacheProbe, kHolder, 2, 0, kernel::kTraceFlagCacheMiss),
      Ev(100, 2, TraceStage::kVerdict, kHolder, 5, kernel::kTraceVerdictAllow),
  };
  const TraceEvent deny_in_window[] = {
      Ev(101, 1, TraceStage::kCacheProbe, kHolder, 2, 0, kernel::kTraceFlagCacheMiss),
      Ev(101, 2, TraceStage::kVerdict, kHolder, 5, kernel::kTraceVerdictDeny),
  };
  const TraceEvent deny_successor[] = {
      // Window [2, 2] but the deny-goal install (gen 5) is the one
      // not-yet-stamped successor: deny admissible here as well.
      Ev(102, 1, TraceStage::kCacheProbe, kHolder, 2, 0, kernel::kTraceFlagCacheMiss),
      Ev(102, 2, TraceStage::kVerdict, kHolder, 2, kernel::kTraceVerdictDeny),
  };
  auditor.IngestSegment(0, 1, allow_in_window);
  auditor.IngestSegment(1, 1, deny_in_window);
  auditor.IngestSegment(2, 1, deny_successor);
  TraceAuditor::Report report = auditor.Finish();
  EXPECT_TRUE(report.clean()) << report.Summary();
  EXPECT_EQ(report.verdicts_checked, 3u);
}

TEST(TraceAuditorTest, GuardBypassOnCompleteChainFlagged) {
  TraceAuditor auditor = MakeAuditor(SmallConfig());
  const MutationRecord mutations[] = {GoalMutation(1, kAllowGoal, 2)};
  auditor.IngestMutations(mutations);
  // Complete chain, engine miss on an audited pair, no guard stage.
  const TraceEvent events[] = {
      Ev(100, 1, TraceStage::kCacheProbe, kStranger, 2, 0, kernel::kTraceFlagCacheMiss),
      Ev(100, 2, TraceStage::kEngineMiss, kStranger, 0),
      Ev(100, 3, TraceStage::kVerdict, kStranger, 2, kernel::kTraceVerdictDeny),
      Ev(101, 4, TraceStage::kSyscall, kStranger, 0),
  };
  auditor.IngestSegment(0, 1, events);
  TraceAuditor::Report report = auditor.Finish();
  EXPECT_EQ(report.guard_bypass_violations, 1u) << report.Summary();
  EXPECT_EQ(report.serializability_violations, 0u);
}

TEST(TraceAuditorTest, TruncatedChainSkipsStructuralChecks) {
  // The same guard-less miss chain, but with a drain gap in front of it:
  // completeness cannot be proven, so no structural claim is made.
  TraceAuditor auditor = MakeAuditor(SmallConfig());
  const MutationRecord mutations[] = {GoalMutation(1, kAllowGoal, 2)};
  auditor.IngestMutations(mutations);
  const TraceEvent first[] = {
      Ev(100, 1, TraceStage::kSyscall, kStranger, 0),
  };
  auditor.IngestSegment(0, 1, first);
  const TraceEvent after_gap[] = {
      Ev(200, 10, TraceStage::kEngineMiss, kStranger, 0),
      Ev(200, 11, TraceStage::kVerdict, kStranger, 2, kernel::kTraceVerdictDeny),
      Ev(201, 12, TraceStage::kSyscall, kStranger, 0),
  };
  auditor.IngestSegment(0, 10, after_gap);  // begin_seq jump = wraparound.
  TraceAuditor::Report report = auditor.Finish();
  EXPECT_EQ(report.guard_bypass_violations, 0u) << report.Summary();
  EXPECT_EQ(report.verdicts_checked, 1u);  // Value checks still run.
}

TEST(TraceAuditorTest, InterpositionBypassFlagged) {
  const kernel::PortId kPort = 77;
  for (bool traversed : {true, false}) {
    TraceAuditor auditor = MakeAuditor(SmallConfig());
    auditor.RequireInterposed(kPort);
    // A correct interposed chain carries BOTH direction stages: the flagged
    // kCall and the kReplyInterpose for the same port.
    const TraceEvent events[] = {
        Ev(100, 1, TraceStage::kReplyInterpose, kHolder, 0,
           kernel::kTraceVerdictNone, kernel::kTraceFlagInterposed, kPort),
        Ev(100, 2, TraceStage::kCall, kHolder, 0, kernel::kTraceVerdictAllow,
           traversed ? kernel::kTraceFlagInterposed : uint16_t{0}, kPort),
        Ev(101, 3, TraceStage::kSyscall, kHolder, 0),
    };
    auditor.IngestSegment(0, 1, events);
    TraceAuditor::Report report = auditor.Finish();
    EXPECT_EQ(report.interposition_violations, traversed ? 0u : 1u)
        << "traversed=" << traversed << " " << report.Summary();
  }
}

TEST(TraceAuditorTest, ReplyBypassFlagged) {
  // The reply-direction half of the interposition invariant: a completed,
  // non-denied call through an interposed port whose chain has NO
  // kReplyInterpose stage means the reply skipped the monitor chain.
  const kernel::PortId kPort = 77;
  for (bool reply_traversed : {true, false}) {
    TraceAuditor auditor = MakeAuditor(SmallConfig());
    auditor.RequireInterposed(kPort);
    std::vector<TraceEvent> events;
    if (reply_traversed) {
      events.push_back(Ev(100, 1, TraceStage::kReplyInterpose, kHolder, 0,
                          kernel::kTraceVerdictNone,
                          kernel::kTraceFlagInterposed, kPort));
    }
    events.push_back(Ev(100, 2, TraceStage::kCall, kHolder, 0,
                        kernel::kTraceVerdictAllow,
                        kernel::kTraceFlagInterposed, kPort));
    events.push_back(Ev(101, 3, TraceStage::kSyscall, kHolder, 0));
    auditor.IngestSegment(0, 1, events);
    TraceAuditor::Report report = auditor.Finish();
    EXPECT_EQ(report.interposition_violations, reply_traversed ? 0u : 1u)
        << "reply_traversed=" << reply_traversed << " " << report.Summary();
  }
}

TEST(TraceAuditorTest, DeniedCallNeedsNoReplyStage) {
  // A call the monitor blocked never produced a reply, so the missing
  // kReplyInterpose stage is NOT a violation there.
  const kernel::PortId kPort = 77;
  TraceAuditor auditor = MakeAuditor(SmallConfig());
  auditor.RequireInterposed(kPort);
  const TraceEvent events[] = {
      Ev(100, 1, TraceStage::kCall, kHolder, 0, kernel::kTraceVerdictDeny,
         static_cast<uint16_t>(kernel::kTraceFlagInterposed |
                               kernel::kTraceFlagDenied),
         kPort),
      Ev(101, 2, TraceStage::kSyscall, kHolder, 0),
  };
  auditor.IngestSegment(0, 1, events);
  TraceAuditor::Report report = auditor.Finish();
  EXPECT_EQ(report.interposition_violations, 0u) << report.Summary();
}

TEST(TraceAuditorTest, GenerationFromTheFutureFlagged) {
  TraceAuditor::Config config = SmallConfig();
  config.complete_mutation_log = true;
  TraceAuditor auditor = MakeAuditor(config);
  const MutationRecord mutations[] = {GoalMutation(1, kAllowGoal, 2)};
  auditor.IngestMutations(mutations);
  // Generation 9 exceeds every logged mutation: deferred during the run
  // (the mutation might not be drained yet), flagged at Finish().
  const TraceEvent events[] = {
      Ev(100, 1, TraceStage::kCacheProbe, kHolder, 9, 0, kernel::kTraceFlagCacheMiss),
      Ev(100, 2, TraceStage::kVerdict, kHolder, 9, kernel::kTraceVerdictAllow),
  };
  auditor.IngestSegment(0, 1, events);
  EXPECT_EQ(auditor.report().stale_generation_violations, 0u);  // Still pending.
  TraceAuditor::Report report = auditor.Finish();
  EXPECT_GE(report.stale_generation_violations, 1u) << report.Summary();
}

// -------------------------------------------------------- Driver e2e

WorkloadConfig SmallDriverConfig(const std::string& scenario) {
  WorkloadConfig config;
  config.scenario = scenario;
  config.threads = 2;
  config.logical_calls = 1'500;
  config.subjects = 5'000;
  config.objects = 32;
  config.audited_objects = 4;
  config.proof_holders = 8;
  config.seed = 11;
  return config;
}

TEST(WorkloadDriverTest, AllScenariosRunCleanSmall) {
  for (const std::string& scenario : apps::ScenarioNames()) {
    WorkloadDriver driver(SmallDriverConfig(scenario));
    Result<WorkloadReport> report = driver.Run();
    ASSERT_TRUE(report.ok()) << scenario << ": " << report.status().message();
    EXPECT_EQ(report->calls_completed, 1'500u);
    EXPECT_TRUE(report->audited);
    EXPECT_TRUE(report->audit.clean()) << scenario << ": " << report->audit.Summary();
    EXPECT_GT(report->audit.events_ingested, 0u) << scenario;
    EXPECT_GT(report->audit.mutations_ingested, 0u) << scenario;
    EXPECT_GT(report->audit.verdicts_checked, 0u) << scenario;
    EXPECT_GT(report->allows + report->denies, 0u) << scenario;
  }
}

TEST(WorkloadDriverTest, OpenLoopModeCompletes) {
  WorkloadConfig config = SmallDriverConfig("trudocs");
  config.logical_calls = 400;
  config.open_loop = true;
  config.open_loop_rate = 200'000;
  WorkloadDriver driver(config);
  Result<WorkloadReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->calls_completed, 400u);
  EXPECT_TRUE(report->audit.clean()) << report->audit.Summary();
}

TEST(WorkloadDriverTest, InjectedStaleVerdictDetected) {
  WorkloadConfig config = SmallDriverConfig("fauxbook");
  config.inject_stale_verdict = true;
  WorkloadDriver driver(config);
  Result<WorkloadReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_GE(report->audit.stale_generation_violations, 1u) << report->audit.Summary();
}

TEST(WorkloadDriverTest, InjectedWrongVerdictDetected) {
  WorkloadConfig config = SmallDriverConfig("fauxbook");
  config.inject_wrong_verdict = true;
  WorkloadDriver driver(config);
  Result<WorkloadReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_GE(report->audit.serializability_violations, 1u) << report->audit.Summary();
}

TEST(WorkloadDriverTest, InjectedRewrittenReplyDetected) {
  // A forged chain claiming an interposed call completed WITHOUT its
  // kReplyInterpose stage models a reply that bypassed the monitor chain;
  // the auditor must flag it. Needs the interposed scenario (ddrm).
  WorkloadConfig config = SmallDriverConfig("ddrm");
  config.inject_rewritten_reply = true;
  WorkloadDriver driver(config);
  Result<WorkloadReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_GE(report->audit.interposition_violations, 1u) << report->audit.Summary();
}

TEST(WorkloadDriverTest, CleanInterposedRunIsNotFlagged) {
  // The other direction of the reply invariant: a clean ddrm run — every
  // reply really does traverse the chain — must produce ZERO interposition
  // violations, or the invariant would drown real bypasses in noise.
  WorkloadConfig config = SmallDriverConfig("ddrm");
  WorkloadDriver driver(config);
  Result<WorkloadReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->audit.interposition_violations, 0u) << SampleDump(report->audit);
  EXPECT_EQ(report->audit.total_violations(), 0u) << SampleDump(report->audit);
}

TEST(WorkloadDriverTest, BatchedReadsRunCleanInterposed) {
  // CallMany submission under audit: every batched read shares one
  // boundary crossing, yet each message must still emit a full per-message
  // interposition chain the auditor accepts. Batch stays small (4) so a
  // batch's events can't wrap a per-thread trace ring into truncation.
  WorkloadConfig config = SmallDriverConfig("ddrm");
  config.callmany_batch = 4;
  config.read_weight = 60;  // Make batched reads the dominant verb.
  config.authorize_weight = 25;
  WorkloadDriver driver(config);
  Result<WorkloadReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_GT(report->read_ops, 0u);
  EXPECT_TRUE(report->audit.clean()) << SampleDump(report->audit);
  EXPECT_EQ(report->audit.interposition_violations, 0u) << SampleDump(report->audit);
}

TEST(WorkloadDriverTest, ReportJsonRoundTrips) {
  WorkloadConfig config = SmallDriverConfig("fauxbook");
  config.logical_calls = 500;
  WorkloadDriver driver(config);
  Result<WorkloadReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().message();
  std::string json = report->ToJson();
  EXPECT_NE(json.find("\"scenario\": \"fauxbook\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
  EXPECT_NE(json.find("\"audit\""), std::string::npos);
  const std::string path = ::testing::TempDir() + "/harness_report.json";
  ASSERT_TRUE(report->WriteJson(path).ok());
  std::ifstream back(path);
  std::string contents((std::istreambuf_iterator<char>(back)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, json);
}

// ------------------------------------------------------------ The soak
//
// Acceptance shape by default: >= 4 threads, >= 100k logical calls, zipf
// over >= 1M simulated subjects, goal-flip + spawn/kill churn in the mix,
// zero violations. NEXUS_SOAK_* scales it (CI's TSan leg runs it smaller).

TEST(WorkloadSoakTest, ChurnSoakIsViolationFree) {
  WorkloadConfig config;
  config.scenario = "ddrm";  // Interposed: all invariant families active.
  config.threads = static_cast<size_t>(EnvOr("NEXUS_SOAK_THREADS", 4));
  config.logical_calls = EnvOr("NEXUS_SOAK_CALLS", 100'000);
  config.subjects = EnvOr("NEXUS_SOAK_SUBJECTS", 1'000'000);
  config.objects = 128;
  config.audited_objects = 8;
  config.proof_holders = 32;
  config.seed = EnvOr("NEXUS_SOAK_SEED", 2026);
  // NEXUS_SOAK_BATCH > 1 drives reads through Kernel::CallMany instead of
  // per-call submission (CI runs one such pass). Audited soaks keep the
  // batch small: the flight-recorder ring holds 256 events per thread, so
  // a large batch between drains would overrun it and the auditor would
  // see sampled (incomplete) chains instead of violations.
  config.callmany_batch = static_cast<size_t>(EnvOr("NEXUS_SOAK_BATCH", 1));
  WorkloadDriver driver(config);
  Result<WorkloadReport> report = driver.Run();
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->calls_completed, config.logical_calls);
  EXPECT_TRUE(report->audit.clean()) << SampleDump(report->audit);
  EXPECT_GT(report->audit.verdicts_checked, 0u);
  EXPECT_GT(report->audit.complete_chains, 0u);
  EXPECT_GT(report->setgoal_ops, 0u);
  EXPECT_GT(report->churn_ops, 0u);
  // Sampled-stream coverage is explicit, never silent.
  RecordProperty("events_ingested", static_cast<int>(report->audit.events_ingested));
  RecordProperty("events_dropped", static_cast<int>(report->audit.events_dropped));
}

}  // namespace
}  // namespace nexus
