// Figure 8: application-level impact on the Fauxbook web stack, in requests
// per second, for file sizes 100 B .. 1 MB.
//
// Three cost sources, each measured for a static file server row and a
// dynamic (framework + cobuf) row:
//   access control   : none / static (cacheable proof) / dynamic (external
//                      authority per request)
//   interposition    : none / kernel monitor ±cache / user monitor ±cache
//   attested storage : none / hash (integrity SSR) / decrypt (encrypted SSR)
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "apps/fauxbook.h"
#include "core/nexus.h"
#include "nal/parser.h"
#include "services/ddrm.h"
#include "storage/ssr.h"
#include "tpm/tpm.h"

namespace {

using nexus::Bytes;
using nexus::ToBytes;

nexus::nal::Formula F(const std::string& text) { return *nexus::nal::ParseFormula(text); }

constexpr int64_t kSizes[] = {100, 1000, 10000, 100000, 1000000};

class UserSpaceMonitor : public nexus::kernel::Interceptor {
 public:
  explicit UserSpaceMonitor(nexus::services::DeviceDriverMonitor* inner) : inner_(inner) {}
  nexus::kernel::InterposeVerdict OnCall(const nexus::kernel::IpcContext& context,
                                         nexus::kernel::IpcMessage& message) override {
    auto wire = MarshalMessage(message);
    if (!wire.ok()) {
      return nexus::kernel::InterposeVerdict::kDeny;
    }
    auto unmarshaled = nexus::kernel::UnmarshalMessage(*wire);
    if (!unmarshaled.ok()) {
      return nexus::kernel::InterposeVerdict::kDeny;
    }
    nexus::kernel::IpcMessage copy = std::move(*unmarshaled);
    return inner_->OnCall(context, copy);
  }

 private:
  nexus::services::DeviceDriverMonitor* inner_;
};

struct Harness {
  Harness()
      : tpm_rng(42),
        tpm(tpm_rng),
        nexus(&tpm),
        fauxbook(&nexus),
        vdirs(*nexus::storage::VdirTable::Boot(&tpm, &disk)),
        vkeys(&tpm, &nexus.rng()),
        ssrs(&disk, &vdirs, &vkeys) {
    fauxbook.AddUser("alice");
    for (int64_t size : kSizes) {
      std::string path = "/www/f" + std::to_string(size);
      nexus.fs().CreateFile(path, Bytes(static_cast<size_t>(size), 'x'));
      // SSR-backed copies for the attested-storage columns.
      plain_ssr[size] = *ssrs.Create(/*encrypted=*/false);
      ssrs.Write(plain_ssr[size], 0, Bytes(static_cast<size_t>(size), 'x'));
      nexus::storage::VkeyId key = *vkeys.Create();
      crypt_ssr[size] = *ssrs.Create(/*encrypted=*/true, key, /*nonce=*/size);
      ssrs.Write(crypt_ssr[size], 0, Bytes(static_cast<size_t>(size), 'x'));
    }
    // Authority for the dynamic-access-control column.
    authority = std::make_unique<nexus::core::LambdaAuthority>(
        [](const nexus::nal::Formula& f) { return nexus::nal::ScopeMatches(f, "Session"); },
        [](const nexus::nal::Formula&) { return true; });
    nexus.guard().AddEmbeddedAuthority(authority.get());

    nexus::services::DdrmPolicy policy;
    policy.allowed_operations = {"open", "close", "read", "write", "stat", "create"};
    fs_monitor_cached = std::make_unique<nexus::services::DeviceDriverMonitor>(policy, true);
    fs_monitor_uncached =
        std::make_unique<nexus::services::DeviceDriverMonitor>(policy, false);
    user_monitor_cached = std::make_unique<UserSpaceMonitor>(fs_monitor_cached.get());
    user_monitor_uncached = std::make_unique<UserSpaceMonitor>(fs_monitor_uncached.get());
  }

  // One post of `size` bytes so the dynamic row's payload tracks filesize.
  void SetPostSize(int64_t size) {
    if (current_post_size == size) {
      return;
    }
    current_post_size = size;
    fauxbook_reset();
  }
  void fauxbook_reset() {
    // Posts accumulate; rebuild the user with a single sized post by using
    // a distinct user per size.
    std::string user = "u" + std::to_string(current_post_size);
    if (!fauxbook.AreFriends(user, user)) {
      fauxbook.AddUser(user);
      fauxbook.PostStatus(user, std::string(static_cast<size_t>(current_post_size), 'p'));
    }
    dynamic_user = user;
  }

  nexus::Rng tpm_rng;
  nexus::tpm::Tpm tpm;
  nexus::core::Nexus nexus;
  nexus::apps::Fauxbook fauxbook;
  nexus::storage::BlockDevice disk;
  nexus::storage::VdirTable vdirs;
  nexus::storage::VkeyTable vkeys;
  nexus::storage::SsrManager ssrs;
  std::map<int64_t, nexus::storage::SsrId> plain_ssr;
  std::map<int64_t, nexus::storage::SsrId> crypt_ssr;
  std::unique_ptr<nexus::core::LambdaAuthority> authority;
  std::unique_ptr<nexus::services::DeviceDriverMonitor> fs_monitor_cached;
  std::unique_ptr<nexus::services::DeviceDriverMonitor> fs_monitor_uncached;
  std::unique_ptr<UserSpaceMonitor> user_monitor_cached;
  std::unique_ptr<UserSpaceMonitor> user_monitor_uncached;
  int64_t current_post_size = -1;
  std::string dynamic_user;
};

Harness& H() {
  static Harness h;
  return h;
}

void ReportRps(benchmark::State& state) {
  state.counters["req/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

// ---------------------------------------------------- Access control rows

enum class Access { kNone, kStatic, kDynamic };

void ConfigureAccess(Harness& h, const std::string& path, Access mode) {
  auto& engine = h.nexus.engine();
  h.nexus.kernel().set_decision_cache_enabled(true);
  h.nexus.kernel().decision_cache().Clear();
  std::string object = "file:" + path;
  engine.ClearGoal(nexus::kernel::kKernelProcessId, "open", object);
  switch (mode) {
    case Access::kNone:
      break;
    case Access::kStatic: {
      engine.SayAs(nexus::nal::Principal("Admin"), F("mayServe(webserver)"));
      engine.SetGoal(nexus::kernel::kKernelProcessId, "open", object,
                     F("Admin says mayServe(webserver)"));
      engine.SetProof(h.fauxbook.webserver_pid(), "open", object,
                      nexus::nal::proof::Premise(F("Admin says mayServe(webserver)")));
      break;
    }
    case Access::kDynamic: {
      engine.SetGoal(nexus::kernel::kKernelProcessId, "open", object,
                     F("Auth says Session < 1000000"));
      engine.SetProof(h.fauxbook.webserver_pid(), "open", object,
                      nexus::nal::proof::Authority(F("Auth says Session < 1000000")));
      break;
    }
  }
}

void RunStaticAccess(benchmark::State& state, Access mode) {
  Harness& h = H();
  int64_t size = state.range(0);
  std::string path = "/www/f" + std::to_string(size);
  ConfigureAccess(h, path, mode);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.fauxbook.ServeStatic(path));
  }
  ConfigureAccess(h, path, Access::kNone);
  ReportRps(state);
}

void RunDynamicAccess(benchmark::State& state, Access mode) {
  Harness& h = H();
  int64_t size = state.range(0);
  h.SetPostSize(size);
  std::string path = "/www/f" + std::to_string(size);
  ConfigureAccess(h, path, mode);  // Guard on the framework's data file.
  for (auto _ : state) {
    if (mode != Access::kNone) {
      benchmark::DoNotOptimize(
          h.nexus.kernel().Authorize(h.fauxbook.webserver_pid(), "open", "file:" + path));
    }
    benchmark::DoNotOptimize(h.fauxbook.ServeDynamic(h.dynamic_user));
  }
  ConfigureAccess(h, path, Access::kNone);
  ReportRps(state);
}

void BM_static_ac_none(benchmark::State& s) { RunStaticAccess(s, Access::kNone); }
void BM_static_ac_static(benchmark::State& s) { RunStaticAccess(s, Access::kStatic); }
void BM_static_ac_dynamic(benchmark::State& s) { RunStaticAccess(s, Access::kDynamic); }
void BM_www_ac_none(benchmark::State& s) { RunDynamicAccess(s, Access::kNone); }
void BM_www_ac_static(benchmark::State& s) { RunDynamicAccess(s, Access::kStatic); }
void BM_www_ac_dynamic(benchmark::State& s) { RunDynamicAccess(s, Access::kDynamic); }

// ---------------------------------------------------- Interposition rows

void RunStaticInterpose(benchmark::State& state, nexus::kernel::Interceptor* interceptor) {
  Harness& h = H();
  int64_t size = state.range(0);
  std::string path = "/www/f" + std::to_string(size);
  uint64_t token = 0;
  if (interceptor != nullptr) {
    token = *h.nexus.kernel().Interpose(h.fauxbook.webserver_pid(), h.nexus.kernel().fs_port(),
                                        interceptor);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.fauxbook.ServeStatic(path));
  }
  if (interceptor != nullptr) {
    h.nexus.kernel().RemoveInterposition(token);
  }
  ReportRps(state);
}

void RunDynamicInterpose(benchmark::State& state, nexus::kernel::Interceptor* interceptor) {
  Harness& h = H();
  int64_t size = state.range(0);
  h.SetPostSize(size);
  std::string path = "/www/f" + std::to_string(size);
  uint64_t token = 0;
  if (interceptor != nullptr) {
    token = *h.nexus.kernel().Interpose(h.fauxbook.webserver_pid(), h.nexus.kernel().fs_port(),
                                        interceptor);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.fauxbook.ServeStatic(path));  // File leg.
    benchmark::DoNotOptimize(h.fauxbook.ServeDynamic(h.dynamic_user));
  }
  if (interceptor != nullptr) {
    h.nexus.kernel().RemoveInterposition(token);
  }
  ReportRps(state);
}

void BM_static_ref_none(benchmark::State& s) { RunStaticInterpose(s, nullptr); }
void BM_static_kref_cached(benchmark::State& s) {
  RunStaticInterpose(s, H().fs_monitor_cached.get());
}
void BM_static_kref_uncached(benchmark::State& s) {
  RunStaticInterpose(s, H().fs_monitor_uncached.get());
}
void BM_static_uref_cached(benchmark::State& s) {
  RunStaticInterpose(s, H().user_monitor_cached.get());
}
void BM_static_uref_uncached(benchmark::State& s) {
  RunStaticInterpose(s, H().user_monitor_uncached.get());
}
void BM_www_ref_none(benchmark::State& s) { RunDynamicInterpose(s, nullptr); }
void BM_www_kref_cached(benchmark::State& s) {
  RunDynamicInterpose(s, H().fs_monitor_cached.get());
}
void BM_www_kref_uncached(benchmark::State& s) {
  RunDynamicInterpose(s, H().fs_monitor_uncached.get());
}
void BM_www_uref_cached(benchmark::State& s) {
  RunDynamicInterpose(s, H().user_monitor_cached.get());
}
void BM_www_uref_uncached(benchmark::State& s) {
  RunDynamicInterpose(s, H().user_monitor_uncached.get());
}

// -------------------------------------------------- Attested storage rows

enum class Storage { kNone, kHash, kDecrypt };

void RunStaticStorage(benchmark::State& state, Storage mode) {
  Harness& h = H();
  int64_t size = state.range(0);
  std::string path = "/www/f" + std::to_string(size);
  for (auto _ : state) {
    switch (mode) {
      case Storage::kNone:
        benchmark::DoNotOptimize(h.fauxbook.ServeStatic(path));
        break;
      case Storage::kHash:
        benchmark::DoNotOptimize(
            h.ssrs.Read(h.plain_ssr[size], 0, static_cast<size_t>(size)));
        break;
      case Storage::kDecrypt:
        benchmark::DoNotOptimize(
            h.ssrs.Read(h.crypt_ssr[size], 0, static_cast<size_t>(size)));
        break;
    }
  }
  ReportRps(state);
}

void RunDynamicStorage(benchmark::State& state, Storage mode) {
  Harness& h = H();
  int64_t size = state.range(0);
  h.SetPostSize(size);
  for (auto _ : state) {
    switch (mode) {
      case Storage::kNone:
        break;
      case Storage::kHash:
        benchmark::DoNotOptimize(
            h.ssrs.Read(h.plain_ssr[size], 0, static_cast<size_t>(size)));
        break;
      case Storage::kDecrypt:
        benchmark::DoNotOptimize(
            h.ssrs.Read(h.crypt_ssr[size], 0, static_cast<size_t>(size)));
        break;
    }
    benchmark::DoNotOptimize(h.fauxbook.ServeDynamic(h.dynamic_user));
  }
  ReportRps(state);
}

void BM_static_store_none(benchmark::State& s) { RunStaticStorage(s, Storage::kNone); }
void BM_static_store_hash(benchmark::State& s) { RunStaticStorage(s, Storage::kHash); }
void BM_static_store_decrypt(benchmark::State& s) { RunStaticStorage(s, Storage::kDecrypt); }
void BM_www_store_none(benchmark::State& s) { RunDynamicStorage(s, Storage::kNone); }
void BM_www_store_hash(benchmark::State& s) { RunDynamicStorage(s, Storage::kHash); }
void BM_www_store_decrypt(benchmark::State& s) { RunDynamicStorage(s, Storage::kDecrypt); }

void Sizes(benchmark::internal::Benchmark* b) {
  for (int64_t size : kSizes) {
    b->Arg(size);
  }
}

BENCHMARK(BM_static_ac_none)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_static_ac_static)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_static_ac_dynamic)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_www_ac_none)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_www_ac_static)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_www_ac_dynamic)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_static_ref_none)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_static_kref_cached)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_static_kref_uncached)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_static_uref_cached)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_static_uref_uncached)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_www_ref_none)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_www_kref_cached)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_www_kref_uncached)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_www_uref_cached)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_www_uref_uncached)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_static_store_none)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_static_store_hash)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_static_store_decrypt)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_www_store_none)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_www_store_hash)->Apply(Sizes)->MinTime(0.05);
BENCHMARK(BM_www_store_decrypt)->Apply(Sizes)->MinTime(0.05);

}  // namespace

NEXUS_BENCHMARK_MAIN();
