#include "kernel/fileserver.h"

namespace nexus::kernel {

Status FileServer::CreateFile(const std::string& path, ByteView content) {
  if (files_.contains(path)) {
    return AlreadyExists("file exists: " + path);
  }
  files_[path] = Bytes(content.begin(), content.end());
  return OkStatus();
}

Result<Bytes> FileServer::ReadFile(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFound("no such file: " + path);
  }
  return it->second;
}

IpcReply FileServer::Handle(const IpcContext& context, const IpcMessage& message) {
  const std::string& op = message.operation;

  if (op == "create") {
    if (message.args.empty()) {
      return Error(InvalidArgument("create needs a path"));
    }
    const std::string& path = message.args[0];
    Status authorized = kernel_->Authorize(context.caller, "create", "file:" + path);
    if (!authorized.ok()) {
      return Error(authorized);
    }
    Status created = CreateFile(path, message.data);
    return IpcReply{created, {}, {}, 0};
  }

  if (op == "open") {
    if (message.args.empty()) {
      return Error(InvalidArgument("open needs a path"));
    }
    const std::string& path = message.args[0];
    Status authorized = kernel_->Authorize(context.caller, "open", "file:" + path);
    if (!authorized.ok()) {
      return Error(authorized);
    }
    if (!files_.contains(path)) {
      return Error(NotFound("no such file: " + path));
    }
    int64_t fd = next_fd_++;
    open_files_[fd] = OpenFile{path, context.caller};
    return IpcReply{OkStatus(), path, {}, fd};
  }

  if (op == "close") {
    if (message.args.empty()) {
      return Error(InvalidArgument("close needs an fd"));
    }
    int64_t fd = std::stoll(message.args[0]);
    auto it = open_files_.find(fd);
    if (it == open_files_.end() || it->second.owner != context.caller) {
      return Error(NotFound("bad file descriptor"));
    }
    open_files_.erase(it);
    return IpcReply{OkStatus(), {}, {}, 0};
  }

  if (op == "read" || op == "write") {
    if (message.args.empty()) {
      return Error(InvalidArgument(op + " needs an fd"));
    }
    int64_t fd = std::stoll(message.args[0]);
    auto it = open_files_.find(fd);
    if (it == open_files_.end() || it->second.owner != context.caller) {
      return Error(NotFound("bad file descriptor"));
    }
    const std::string& path = it->second.path;
    Status authorized = kernel_->Authorize(context.caller, op, "file:" + path);
    if (!authorized.ok()) {
      return Error(authorized);
    }
    Bytes& content = files_[path];
    if (op == "read") {
      size_t offset = message.args.size() > 1 ? std::stoull(message.args[1]) : 0;
      size_t length =
          message.args.size() > 2 ? std::stoull(message.args[2]) : content.size();
      if (offset > content.size()) {
        return Error(OutOfRange("read past end of file"));
      }
      length = std::min(length, content.size() - offset);
      Bytes out(content.begin() + static_cast<ptrdiff_t>(offset),
                content.begin() + static_cast<ptrdiff_t>(offset + length));
      return IpcReply{OkStatus(), {}, std::move(out), static_cast<int64_t>(length)};
    }
    // write
    size_t offset = message.args.size() > 1 ? std::stoull(message.args[1]) : content.size();
    if (offset > content.size()) {
      return Error(OutOfRange("write past end of file"));
    }
    if (offset + message.data.size() > content.size()) {
      content.resize(offset + message.data.size());
    }
    std::copy(message.data.begin(), message.data.end(),
              content.begin() + static_cast<ptrdiff_t>(offset));
    return IpcReply{OkStatus(), {}, {}, static_cast<int64_t>(message.data.size())};
  }

  if (op == "unlink") {
    if (message.args.empty()) {
      return Error(InvalidArgument("unlink needs a path"));
    }
    const std::string& path = message.args[0];
    Status authorized = kernel_->Authorize(context.caller, "unlink", "file:" + path);
    if (!authorized.ok()) {
      return Error(authorized);
    }
    if (files_.erase(path) == 0) {
      return Error(NotFound("no such file: " + path));
    }
    return IpcReply{OkStatus(), {}, {}, 0};
  }

  if (op == "stat") {
    if (message.args.empty()) {
      return Error(InvalidArgument("stat needs a path"));
    }
    auto it = files_.find(message.args[0]);
    if (it == files_.end()) {
      return Error(NotFound("no such file: " + message.args[0]));
    }
    return IpcReply{OkStatus(), {}, {}, static_cast<int64_t>(it->second.size())};
  }

  return Error(InvalidArgument("unknown filesystem operation: " + op));
}

}  // namespace nexus::kernel
