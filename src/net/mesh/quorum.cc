#include "net/mesh/quorum.h"

namespace nexus::net::mesh {

namespace {

class ReadyQuorumFuture : public core::VouchFuture {
 public:
  explicit ReadyQuorumFuture(std::vector<bool> answers) : answers_(std::move(answers)) {}
  std::vector<bool> Wait() override { return std::move(answers_); }

 private:
  std::vector<bool> answers_;
};

class PendingQuorumFuture : public core::VouchFuture {
 public:
  explicit PendingQuorumFuture(std::function<std::vector<bool>()> collect)
      : collect_(std::move(collect)) {}
  std::vector<bool> Wait() override { return collect_(); }

 private:
  std::function<std::vector<bool>()> collect_;
};

}  // namespace

QuorumAuthority::QuorumAuthority(Transport* transport, QuorumPolicy policy,
                                 HandlesPredicate handles)
    : transport_(transport), policy_(std::move(policy)), handles_(std::move(handles)) {}

void QuorumAuthority::AddMember(core::Authority* member) {
  members_.push_back(member);
  member_state_.push_back(MemberState{});
}

bool QuorumAuthority::Handles(const nal::Formula& statement) const {
  if (handles_ != nullptr) {
    return handles_(statement);
  }
  for (core::Authority* member : members_) {
    if (member->Handles(statement)) {
      return true;
    }
  }
  return false;
}

void QuorumAuthority::RecordOutcome(size_t member, bool responsive) {
  std::lock_guard<std::mutex> lock(mu_);
  MemberState& state = member_state_[member];
  if (responsive) {
    state.consecutive_failures = 0;
    state.backoff_until_us = 0;
    return;
  }
  ++state.consecutive_failures;
  if (state.consecutive_failures >= policy_.failures_before_backoff) {
    state.backoff_until_us = transport_->now_us() + policy_.backoff_us;
  }
}

std::vector<bool> QuorumAuthority::Tally(
    std::span<const nal::Formula> statements,
    const std::vector<std::pair<size_t, core::VouchOutcome>>& outcomes) {
  size_t count = statements.size();
  std::vector<size_t> yes(count, 0);
  size_t responsive = 0;
  for (const auto& [member, outcome] : outcomes) {
    RecordOutcome(member, outcome.responsive);
    if (!outcome.responsive || outcome.answers.size() != count) {
      continue;
    }
    ++responsive;
    for (size_t i = 0; i < count; ++i) {
      if (outcome.answers[i]) {
        ++yes[i];
      }
    }
  }
  std::vector<bool> verdicts(count, false);
  for (size_t i = 0; i < count; ++i) {
    verdicts[i] = yes[i] >= policy_.quorum;
    if (verdicts[i]) {
      stats_.vouched->Increment();
    } else if (responsive < policy_.quorum) {
      // Not enough LIVE members for K yes-votes to have been possible:
      // the deny's cause is unresponsiveness, not dissent.
      stats_.denied_timeout->Increment();
    } else {
      stats_.denied_no_quorum->Increment();
    }
  }
  return verdicts;
}

std::unique_ptr<core::VouchFuture> QuorumAuthority::VouchBatchAsync(
    std::span<const nal::Formula> statements, uint64_t timeout_us) {
  size_t count = statements.size();
  if (count == 0 || members_.empty()) {
    return std::make_unique<ReadyQuorumFuture>(std::vector<bool>(count, false));
  }
  stats_.statements->Increment(count);
  // Issue phase: EVERY live member's batch goes on the wire before any
  // Wait — the overlap that makes the round cost max-of-K latency.
  std::vector<std::pair<size_t, std::unique_ptr<core::DetailedVouchFuture>>> futures;
  futures.reserve(members_.size());
  uint64_t now = transport_->now_us();
  for (size_t i = 0; i < members_.size(); ++i) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (member_state_[i].backoff_until_us > now) {
        stats_.members_skipped->Increment();
        continue;  // Sidelined; it rejoins when the window passes.
      }
    }
    stats_.member_rounds->Increment();
    futures.emplace_back(i, members_[i]->VouchBatchAsyncDetailed(statements, timeout_us));
  }
  std::vector<nal::Formula> owned(statements.begin(), statements.end());
  return std::make_unique<PendingQuorumFuture>(
      [this, owned = std::move(owned), futures = std::make_shared<decltype(futures)>(
                                           std::move(futures))]() mutable {
        std::vector<std::pair<size_t, core::VouchOutcome>> outcomes;
        outcomes.reserve(futures->size());
        for (auto& [member, future] : *futures) {
          outcomes.emplace_back(member, future->Wait());
        }
        return Tally(owned, outcomes);
      });
}

std::vector<bool> QuorumAuthority::VouchBatch(std::span<const nal::Formula> statements,
                                              uint64_t timeout_us) {
  return VouchBatchAsync(statements, timeout_us)->Wait();
}

bool QuorumAuthority::VouchesWithin(const nal::Formula& statement, uint64_t timeout_us) {
  return VouchBatch(std::span<const nal::Formula>(&statement, 1), timeout_us)[0];
}

bool QuorumAuthority::Vouches(const nal::Formula& statement) {
  // The guard supplies the deadline on its paths; direct callers get a
  // generous default matched to the simulated fabric.
  return VouchesWithin(statement, /*timeout_us=*/10000);
}

}  // namespace nexus::net::mesh
