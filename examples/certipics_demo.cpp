// CertiPics + TruDocs (§4): certified document handling.
#include <cstdio>

#include "apps/certipics.h"
#include "apps/trudocs.h"
#include "tpm/tpm.h"

using namespace nexus;

int main() {
  Rng tpm_rng(13);
  tpm::Tpm hardware_tpm(tpm_rng);
  core::Nexus nexus(&hardware_tpm);

  // --- CertiPics: a news photo is edited; the log certifies what was done.
  auto editor = *nexus.CreateProcess("certipics", ToBytes("certipics"));
  apps::Image photo = apps::MakeImage(64, 64, 0);
  for (size_t i = 0; i < photo.pixels.size(); ++i) {
    photo.pixels[i] = static_cast<uint8_t>(i % 251);
  }

  apps::CertiPics session(&nexus, editor, photo);
  session.Crop(8, 8, 48, 48);
  session.Resize(32, 32);
  session.ColorTransform(+15);
  std::printf("legitimate edit log (%zu entries): %s\n", session.log().size(),
              apps::CertiPics::VerifyLog(photo, session.current(), session.log(), {"clone"})
                  .ToString()
                  .c_str());

  apps::CertiPics doctored(&nexus, editor, photo);
  doctored.ColorTransform(+5);
  doctored.Clone(0, 0, 32, 32, 16, 16);  // Duplicating image content.
  std::printf("log containing a clone, news policy: %s\n",
              apps::CertiPics::VerifyLog(photo, doctored.current(), doctored.log(), {"clone"})
                  .ToString()
                  .c_str());
  auto truncated = doctored.log();
  truncated.pop_back();  // Hide the clone.
  std::printf("log with the clone entry removed:    %s\n",
              apps::CertiPics::VerifyLog(photo, doctored.current(), truncated, {"clone"})
                  .ToString()
                  .c_str());

  // --- TruDocs: excerpts must not distort the source.
  std::string report = "The committee found no evidence of wrongdoing by the agency.";
  apps::ExcerptPolicy policy;
  auto td = *nexus.CreateProcess("trudocs", ToBytes("trudocs"));
  apps::TruDocs trudocs(&nexus, td);

  struct TestCase {
    const char* excerpt;
  } cases[] = {
      {"The committee found no evidence of wrongdoing"},
      {"The committee ... wrongdoing by the agency."},
      {"found evidence of wrongdoing"},  // "no" elided: distortion.
      {"committee found [in 2011] no evidence"},
  };
  for (const TestCase& test_case : cases) {
    Status verdict = apps::TruDocs::CheckExcerpt(report, test_case.excerpt, policy);
    std::printf("excerpt \"%s\": %s\n", test_case.excerpt, verdict.ToString().c_str());
  }
  auto certified =
      trudocs.CertifyExcerpt(report, "The committee ... wrongdoing by the agency.", policy);
  std::printf("certificate label issued: %s\n",
              certified.ok() ? "yes (excerptSpeaksFor)" : certified.status().ToString().c_str());
  return 0;
}
