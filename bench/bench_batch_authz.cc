// Batched authorization sweep: batch size × remote-authority fraction.
//
// Two attested Nexus instances share a simulated fabric. Instance A
// authorizes a batch of distinct (subject, "use", object) tuples; a
// configurable fraction of the objects carry goals whose proofs lean on a
// remote authority living on instance B (each object has its OWN statement,
// so nothing dedupes away — the win measured here is round-trip coalescing,
// not duplicate collapsing). The rest are statically-provable "pass" cases.
//
//   serial : one Kernel::Authorize per tuple — every remote leaf pays its
//            own attested round trip (AES+HMAC framing both ways).
//   batched: one Kernel::AuthorizeBatch — all remote leaves travel in a
//            single VouchBatch message per remote authority.
//
// The simulated clock makes link latency free; what the numbers show is the
// real CPU cost of per-message channel crypto and dispatch, which is what
// batching amortizes. Counters report remote round trips per iteration.
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <memory>
#include <set>
#include <string>

#include "core/nexus.h"
#include "nal/parser.h"
#include "net/node.h"
#include "net/remote_authority.h"
#include "net/transport.h"
#include "tpm/tpm.h"

namespace {

using nexus::ToBytes;
using nexus::core::LambdaAuthority;

nexus::nal::Formula F(const std::string& text) {
  return *nexus::nal::ParseFormula(text);
}

struct World {
  World()
      : rng_a(101),
        rng_b(202),
        tpm_a(rng_a),
        tpm_b(rng_b),
        nexus_a(&tpm_a, nexus::core::NexusOptions{.seed = 1}),
        nexus_b(&tpm_b, nexus::core::NexusOptions{.seed = 2}),
        transport(7) {
    nexus_a.RegisterPeer("b", tpm_b.endorsement_public_key());
    nexus_b.RegisterPeer("a", tpm_a.endorsement_public_key());
    node_a = std::make_unique<nexus::net::NetNode>(&nexus_a, &transport, "a");
    node_b = std::make_unique<nexus::net::NetNode>(&nexus_b, &transport, "b");

    service = std::make_unique<nexus::net::AuthorityService>(node_b.get());
    session = std::make_unique<LambdaAuthority>(
        [](const nexus::nal::Formula& f) {
          return f->kind() == nexus::nal::FormulaKind::kSays &&
                 f->speaker().base() == "Session";
        },
        [](const nexus::nal::Formula&) { return true; });
    service->AddAuthority(session.get());

    remote = std::make_unique<nexus::net::RemoteAuthority>(node_a.get(), "b", nullptr,
                                                           /*default_timeout_us=*/100000);
    nexus_a.guard().AddRemoteAuthority(remote.get());
    nexus_a.guard().set_remote_query_timeout_us(100000);

    owner = *nexus_a.CreateProcess("owner", ToBytes("o"));
    subject = *nexus_a.CreateProcess("subject", ToBytes("s"));
  }

  // Builds `n` tuples, `remote_pct`% of which require a remote-authority
  // consultation. Objects are memoized so repeated benchmark configs reuse
  // registrations.
  std::vector<nexus::kernel::AuthzRequest> Tuples(size_t n, int remote_pct) {
    std::vector<nexus::kernel::AuthzRequest> requests;
    requests.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      bool is_remote = i * 100 < n * static_cast<size_t>(remote_pct);
      std::string object = (is_remote ? "r:" : "l:") + std::to_string(i);
      if (!configured.contains(object)) {
        configured.insert(object);
        nexus_a.engine().RegisterObject(object, owner, nexus::kernel::kKernelProcessId);
        if (is_remote) {
          nexus::nal::Formula statement =
              F("Session says active(user" + std::to_string(i) + ")");
          nexus_a.engine().SetGoal(owner, "use", object, statement);
          nexus_a.engine().SetProof(subject, "use", object,
                                    nexus::nal::proof::Authority(statement));
        } else {
          nexus::nal::Formula goal = F("Certifier says ok(subject)");
          nexus_a.engine().SetGoal(owner, "use", object, goal);
          nexus_a.engine().SetProof(subject, "use", object,
                                    nexus::nal::proof::Premise(goal));
        }
      }
      requests.push_back(nexus::kernel::AuthzRequest::Of(subject, "use", object));
    }
    return requests;
  }

  nexus::Rng rng_a, rng_b;
  nexus::tpm::Tpm tpm_a, tpm_b;
  nexus::core::Nexus nexus_a, nexus_b;
  nexus::net::Transport transport;
  std::unique_ptr<nexus::net::NetNode> node_a, node_b;
  std::unique_ptr<nexus::net::AuthorityService> service;
  std::unique_ptr<LambdaAuthority> session;
  std::unique_ptr<nexus::net::RemoteAuthority> remote;
  nexus::kernel::ProcessId owner = 0;
  nexus::kernel::ProcessId subject = 0;
  std::set<std::string> configured;
};

World& W() {
  static World* world = new World();
  return *world;
}

void Run(benchmark::State& state, bool batched) {
  World& w = W();
  static bool credential_seeded = false;
  if (!credential_seeded) {
    credential_seeded = true;
    w.nexus_a.engine().SayAs(nexus::nal::Principal("Certifier"), F("ok(subject)"));
  }
  size_t n = static_cast<size_t>(state.range(0));
  int remote_pct = static_cast<int>(state.range(1));
  std::vector<nexus::kernel::AuthzRequest> requests = w.Tuples(n, remote_pct);

  uint64_t round_trips_before = w.remote->stats().queries;
  uint64_t batches_before = w.remote->stats().batch_round_trips;
  for (auto _ : state) {
    w.nexus_a.kernel().decision_cache().Clear();
    if (batched) {
      benchmark::DoNotOptimize(w.nexus_a.kernel().AuthorizeBatch(requests));
    } else {
      for (const auto& request : requests) {
        benchmark::DoNotOptimize(w.nexus_a.kernel().Authorize(request));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * requests.size());
  double iters = static_cast<double>(std::max<int64_t>(1, state.iterations()));
  if (batched) {
    state.counters["wire_rt/iter"] = benchmark::Counter(
        static_cast<double>(w.remote->stats().batch_round_trips - batches_before) / iters);
  } else {
    state.counters["wire_rt/iter"] = benchmark::Counter(
        static_cast<double>(w.remote->stats().queries - round_trips_before) / iters);
  }
}

void BM_authz_serial(benchmark::State& state) { Run(state, false); }
void BM_authz_batched(benchmark::State& state) { Run(state, true); }

#define SWEEP(bench)                                                        \
  BENCHMARK(bench)                                                          \
      ->ArgsProduct({{8, 64, 256}, {0, 25, 100}})                           \
      ->ArgNames({"batch", "remote%"})

SWEEP(BM_authz_serial);
SWEEP(BM_authz_batched);

#undef SWEEP

}  // namespace

NEXUS_BENCHMARK_MAIN();
