// Paired flight-recorder overhead measurement on the fig7 kref-min path.
//
// The observability budget says: tracing ON may cost at most 5% on the
// interposed echo path. A 2% effect cannot be resolved by sequential
// benchmark repetitions on a noisy (virtualized, single-CPU) host, whose
// clock drifts 8-15% between speed regimes over hundreds of milliseconds.
// So this harness alternates MANY short traced/untraced windows (a few ms
// each — short enough that adjacent windows share a regime) and reports
// the median of per-pair deltas, which cancels drift pair by pair, plus
// best-of-run minima for each side. The median-delta percentage is the
// number the README quotes and CI gates on (NEXUS_TRACE_OVERHEAD_MAX_PCT).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/nexus.h"
#include "kernel/trace.h"
#include "services/ddrm.h"
#include "tpm/tpm.h"
#include "util/metrics.h"

namespace {

using nexus::Bytes;
using nexus::ToBytes;
using nexus::kernel::IpcContext;
using nexus::kernel::IpcMessage;
using nexus::kernel::IpcReply;

// Same topology as bench_fig7 kref-min: client -> interposed driver port
// -> driver forwards over a nested Call -> echo server.
class EchoServer : public nexus::kernel::PortHandler {
 public:
  IpcReply Handle(const IpcContext&, const IpcMessage& message) override {
    IpcReply reply = IpcReply::Ok();
    reply.data = message.data;
    return reply;
  }
};

class DriverProcess : public nexus::kernel::PortHandler {
 public:
  DriverProcess(nexus::kernel::Kernel* kernel, nexus::kernel::ProcessId self,
                nexus::kernel::PortId server_port)
      : kernel_(kernel), self_(self), server_port_(server_port) {}

  IpcReply Handle(const IpcContext&, const IpcMessage& message) override {
    static const nexus::kernel::OpId send_op = nexus::kernel::InternOp("send");
    IpcMessage forwarded = IpcMessage::Of(send_op);
    forwarded.data = message.data;
    return kernel_->Call(self_, server_port_, forwarded);
  }

 private:
  nexus::kernel::Kernel* kernel_;
  nexus::kernel::ProcessId self_;
  nexus::kernel::PortId server_port_;
};

double TimeCalls(nexus::kernel::Kernel& k, nexus::kernel::ProcessId client,
                 nexus::kernel::PortId driver_port, const IpcMessage& packet, int iters) {
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    IpcReply reply = k.Call(client, driver_port, packet);
    if (!reply.status.ok()) {
      std::fprintf(stderr, "kref-min call failed: %s\n", std::string(reply.status.message()).c_str());
      std::exit(1);
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
}

struct PairedResult {
  double off_min_ns = 0;       // Fastest untraced window.
  double on_min_ns = 0;        // Fastest traced window.
  double median_delta_ns = 0;  // Median of (traced - untraced) per pair.
  double median_pct = 0;       // Median of per-pair (traced-untraced)/untraced.
};

PairedResult MeasurePayload(nexus::kernel::Kernel& k, nexus::kernel::ProcessId client,
                            nexus::kernel::PortId driver_port, int payload, int pairs,
                            int window_iters) {
  auto& recorder = nexus::kernel::FlightRecorder::Global();
  IpcMessage packet = IpcMessage::Of("recv");
  packet.data = Bytes(static_cast<size_t>(payload), 0xab);

  // Warm both modes (interceptor memo, rings, branch predictors).
  TimeCalls(k, client, driver_port, packet, window_iters);
  recorder.set_enabled(true);
  TimeCalls(k, client, driver_port, packet, window_iters);
  recorder.set_enabled(false);

  PairedResult result{1e18, 1e18, 0, 0};
  std::vector<double> deltas;
  std::vector<double> pcts;
  deltas.reserve(static_cast<size_t>(pairs));
  pcts.reserve(static_cast<size_t>(pairs));
  for (int pair = 0; pair < pairs; ++pair) {
    // Alternate off/on ordering each pair so neither side systematically
    // inherits the other's cache wake-up.
    double off;
    double on;
    if ((pair & 1) == 0) {
      recorder.set_enabled(false);
      off = TimeCalls(k, client, driver_port, packet, window_iters);
      recorder.set_enabled(true);
      on = TimeCalls(k, client, driver_port, packet, window_iters);
    } else {
      recorder.set_enabled(true);
      on = TimeCalls(k, client, driver_port, packet, window_iters);
      recorder.set_enabled(false);
      off = TimeCalls(k, client, driver_port, packet, window_iters);
    }
    recorder.set_enabled(false);
    result.off_min_ns = std::min(result.off_min_ns, off);
    result.on_min_ns = std::min(result.on_min_ns, on);
    deltas.push_back(on - off);
    pcts.push_back(100.0 * (on - off) / off);
  }
  std::sort(deltas.begin(), deltas.end());
  std::sort(pcts.begin(), pcts.end());
  result.median_delta_ns = deltas[deltas.size() / 2];
  result.median_pct = pcts[pcts.size() / 2];
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // Positional overrides only when they parse as positive numbers, so the
  // CI smoke runner's --benchmark_* flags fall through to the defaults.
  int pairs = 200;
  int window_iters = 5000;
  if (argc > 1 && std::atoi(argv[1]) > 0) {
    pairs = std::atoi(argv[1]);
  }
  if (argc > 2 && std::atoi(argv[2]) > 0) {
    window_iters = std::atoi(argv[2]);
  }

  nexus::Rng rng(42);
  nexus::tpm::Tpm tpm(rng);
  nexus::core::Nexus nexus_os(&tpm);
  auto& k = nexus_os.kernel();
  auto client = *nexus_os.CreateProcess("udp-client", ToBytes("client"));
  auto server_pid = *nexus_os.CreateProcess("echo-server", ToBytes("echo"));
  auto driver_pid = *nexus_os.CreateProcess("netdriver", ToBytes("e1000"));
  auto server_port = *nexus_os.CreatePort(server_pid);
  auto driver_port = *nexus_os.CreatePort(driver_pid);
  EchoServer server;
  k.BindHandler(server_port, &server);
  DriverProcess driver(&k, driver_pid, server_port);
  k.BindHandler(driver_port, &driver);

  nexus::services::DdrmPolicy policy;
  policy.allowed_operations = {"send", "recv"};
  nexus::services::DeviceDriverMonitor monitor(policy, true);
  uint64_t token = *k.Interpose(driver_pid, driver_port, &monitor);

  double worst_pct = 0;
  for (int payload : {100, 1500}) {
    PairedResult r = MeasurePayload(k, client, driver_port, payload, pairs, window_iters);
    worst_pct = std::max(worst_pct, r.median_pct);
    std::printf(
        "TRACE_OVERHEAD payload=%d untraced_min_ns=%.1f traced_min_ns=%.1f "
        "median_delta_ns=%.1f delta_pct=%.2f\n",
        payload, r.off_min_ns, r.on_min_ns, r.median_delta_ns, r.median_pct);
  }

  k.RemoveInterposition(token);
  nexus::metrics::DumpRegistryToEnvPath();

  const char* gate = std::getenv("NEXUS_TRACE_OVERHEAD_MAX_PCT");
  if (gate != nullptr) {
    double max_pct = std::atof(gate);
    if (worst_pct > max_pct) {
      std::fprintf(stderr, "FAIL: trace overhead %.2f%% exceeds gate %.2f%%\n", worst_pct,
                   max_pct);
      return 1;
    }
    std::printf("PASS: trace overhead %.2f%% within gate %.2f%%\n", worst_pct, max_pct);
  }
  return 0;
}
