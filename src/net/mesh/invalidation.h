// Cross-node decision-cache invalidation (epoch-stamped).
//
// A setgoal/setproof on node A retires A's cached verdicts through
// DecisionCache::InvalidateSubregion — but node B may hold cached verdicts
// for the same (op, obj) pair, installed while B's guard consulted A's
// authorities. The propagator closes that hole: A's kernel invalidation
// sink hands every local invalidation to Broadcast(), which stamps it with
// a per-origin monotonic EPOCH and ships (origin, epoch, op, obj) to every
// mesh peer over the attested channels; the receiving propagator applies
// InvalidateSubregion on ITS cache and — when observability is on — stamps
// the exact post-bump generations into the mutation log (kind
// remote_invalidate) plus a flight-recorder event, which is what lets
// TraceAuditor flag a remote verdict served past its invalidation.
//
// Semantics under loss/duplication/reordering:
//   - duplicate delivery: a per-origin replay window makes the re-apply an
//     exact no-op (no second generation bump);
//   - reordered delivery: distinct epochs all apply — invalidation is a
//     bump, not a value write, so order does not matter;
//   - dropped delivery: a bounded outbound log is re-pushed by
//     ResendRecent() (anti-entropy), so a healed partition catches up.
// Invalidations are accepted only FIRST-HAND: the origin field must equal
// the delivering channel's attested peer, so no node can forge another's
// invalidations (fan-out is mesh-full, not relayed).
//
// Names travel, ids do not: OpId/ObjectId are intern-table handles, so the
// wire carries the op/object NAMES and the receiver re-interns them.
#ifndef NEXUS_NET_MESH_INVALIDATION_H_
#define NEXUS_NET_MESH_INVALIDATION_H_

#include <atomic>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "kernel/kernel.h"
#include "net/mesh/registry.h"
#include "net/node.h"

namespace nexus::net::mesh {

class InvalidationPropagator : public Service {
 public:
  static constexpr std::string_view kServiceName = "mesh_inval";

  struct Options {
    // Stamp applied invalidations into the global MutationLog and
    // FlightRecorder. Enable on the node whose decision plane is being
    // audited; DISABLE on auxiliary instances sharing the process-global
    // observability plane, or their applies pollute the audited timeline.
    bool stamp_observability = true;
    // Per-origin duplicate filter span (epochs), mirroring the channel
    // replay window's shape.
    size_t replay_window = 4096;
    // Outbound records retained for ResendRecent().
    size_t resend_log = 1024;
  };

  struct Stats {
    uint64_t broadcasts = 0;     // Local invalidations fanned out.
    uint64_t sends = 0;          // Per-peer messages sent.
    uint64_t applied = 0;        // Remote invalidations applied here.
    uint64_t duplicates = 0;     // Replay-window no-ops.
    uint64_t rejected = 0;       // Malformed or forged-origin messages.
  };

  InvalidationPropagator(NetNode* node, MeshRegistry* registry, Options options);
  InvalidationPropagator(NetNode* node, MeshRegistry* registry)
      : InvalidationPropagator(node, registry, Options{}) {}

  // Wires this node's kernel to Broadcast: every local goal/proof
  // invalidation fans out to the mesh. The sink applies nothing locally
  // (the kernel already bumped its own cache) and must stay installed no
  // longer than this propagator lives.
  void AttachKernel(kernel::Kernel* kernel);
  void DetachKernel(kernel::Kernel* kernel);

  // Fan out one invalidation (called by the kernel sink, or tests).
  void Broadcast(kernel::OpId op, kernel::ObjectId obj);

  // Re-push the retained outbound log to every reachable peer. Duplicates
  // are no-ops at the receiver, so this is safe to call repeatedly; it is
  // the heal-after-partition path. Returns messages sent.
  size_t ResendRecent();

  Result<Bytes> Handle(AttestedChannel& channel, ByteView request) override;

  // Highest epoch applied from `origin` (0 = none), for tests.
  uint64_t AppliedEpoch(const NodeId& origin) const;
  uint64_t local_epoch() const { return epoch_.load(std::memory_order_relaxed); }
  Stats stats() const;

 private:
  struct OutboundRecord {
    uint64_t epoch = 0;
    std::string op_name;
    std::string obj_name;
  };
  // Per-origin duplicate filter: exact-once within the window.
  struct OriginState {
    uint64_t max_seen = 0;
    std::set<uint64_t> seen;
  };

  Bytes SerializeRecord(const OutboundRecord& record) const;
  size_t SendToPeers(const Bytes& payload);

  NetNode* node_;
  MeshRegistry* registry_;
  Options options_;
  std::atomic<uint64_t> epoch_{0};

  mutable std::mutex mu_;  // outbound_, origins_, stats_.
  std::deque<OutboundRecord> outbound_;
  std::map<NodeId, OriginState> origins_;
  Stats stats_;
};

}  // namespace nexus::net::mesh

#endif  // NEXUS_NET_MESH_INVALIDATION_H_
