#include "services/time_authority.h"

namespace nexus::services {

bool EvaluateComparison(nal::CompareOp op, int64_t lhs, int64_t rhs) {
  switch (op) {
    case nal::CompareOp::kLt:
      return lhs < rhs;
    case nal::CompareOp::kLe:
      return lhs <= rhs;
    case nal::CompareOp::kEq:
      return lhs == rhs;
    case nal::CompareOp::kGe:
      return lhs >= rhs;
    case nal::CompareOp::kGt:
      return lhs > rhs;
    case nal::CompareOp::kNe:
      return lhs != rhs;
  }
  return false;
}

bool TimeAuthority::Handles(const nal::Formula& statement) const {
  if (statement->kind() != nal::FormulaKind::kSays || !(statement->speaker() == name_)) {
    return false;
  }
  const nal::Formula& body = statement->child1();
  if (body->kind() != nal::FormulaKind::kCompare) {
    return false;
  }
  auto is_time = [](const nal::Term& t) {
    return t.kind() == nal::TermKind::kSymbol && t.text() == "TimeNow";
  };
  auto is_const = [](const nal::Term& t) { return t.kind() == nal::TermKind::kInt; };
  return (is_time(body->lhs()) && is_const(body->rhs())) ||
         (is_const(body->lhs()) && is_time(body->rhs()));
}

bool TimeAuthority::Vouches(const nal::Formula& statement) {
  if (!Handles(statement)) {
    return false;
  }
  const nal::Formula& body = statement->child1();
  int64_t now = clock_();
  if (body->lhs().kind() == nal::TermKind::kSymbol) {
    return EvaluateComparison(body->compare_op(), now, body->rhs().int_value());
  }
  return EvaluateComparison(body->compare_op(), body->lhs().int_value(), now);
}

}  // namespace nexus::services
