#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/rng.h"
#include "util/status.h"

namespace nexus {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = PermissionDenied("proof does not discharge goal");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(s.ToString(), "PERMISSION_DENIED: proof does not discharge goal");
}

TEST(StatusTest, AllErrorCodesHaveNames) {
  for (int i = 0; i <= static_cast<int>(ErrorCode::kInternal); ++i) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(i)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("no such label");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(BytesTest, RoundTripStringConversion) {
  Bytes b = ToBytes("nexus");
  EXPECT_EQ(ToString(b), "nexus");
}

TEST(BytesTest, HexEncode) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(HexEncode(b), "0001abff");
}

TEST(BytesTest, HexDecodeRoundTrip) {
  Result<Bytes> decoded = HexDecode("0001abff");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, (Bytes{0x00, 0x01, 0xab, 0xff}));
}

TEST(BytesTest, HexDecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").ok());
}

TEST(BytesTest, HexDecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").ok());
}

TEST(BytesTest, HexDecodeAcceptsUpperCase) {
  Result<Bytes> decoded = HexDecode("ABFF");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, (Bytes{0xab, 0xff}));
}

TEST(BytesTest, ConstantTimeEquals) {
  Bytes a = ToBytes("secret");
  Bytes b = ToBytes("secret");
  Bytes c = ToBytes("secreT");
  Bytes d = ToBytes("secre");
  EXPECT_TRUE(ConstantTimeEquals(a, b));
  EXPECT_FALSE(ConstantTimeEquals(a, c));
  EXPECT_FALSE(ConstantTimeEquals(a, d));
}

TEST(BytesTest, U32RoundTrip) {
  Bytes buf;
  AppendU32(buf, 0xdeadbeef);
  ByteReader reader(buf);
  Result<uint32_t> v = reader.ReadU32();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0xdeadbeefu);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, U64RoundTrip) {
  Bytes buf;
  AppendU64(buf, 0x0123456789abcdefULL);
  ByteReader reader(buf);
  Result<uint64_t> v = reader.ReadU64();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0x0123456789abcdefULL);
}

TEST(BytesTest, LengthPrefixedRoundTrip) {
  Bytes buf;
  AppendLengthPrefixed(buf, ToBytes("alpha"));
  AppendLengthPrefixed(buf, ToBytes(""));
  AppendLengthPrefixed(buf, ToBytes("beta"));
  ByteReader reader(buf);
  EXPECT_EQ(ToString(*reader.ReadLengthPrefixed()), "alpha");
  EXPECT_EQ(ToString(*reader.ReadLengthPrefixed()), "");
  EXPECT_EQ(ToString(*reader.ReadLengthPrefixed()), "beta");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, ReaderRejectsTruncatedInput) {
  Bytes buf = {0x00, 0x00, 0x00, 0x08, 0x01};  // Claims 8 bytes, has 1.
  ByteReader reader(buf);
  EXPECT_FALSE(reader.ReadLengthPrefixed().ok());
}

TEST(BytesTest, ReaderRejectsShortU32) {
  Bytes buf = {0x01, 0x02};
  ByteReader reader(buf);
  EXPECT_FALSE(reader.ReadU32().ok());
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(7);
  bool seen[5] = {false};
  for (int i = 0; i < 200; ++i) {
    seen[rng.NextBelow(5)] = true;
  }
  for (bool s : seen) {
    EXPECT_TRUE(s);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoolProbabilityExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, RandomBytesLength) {
  Rng rng(11);
  EXPECT_EQ(rng.RandomBytes(0).size(), 0u);
  EXPECT_EQ(rng.RandomBytes(1).size(), 1u);
  EXPECT_EQ(rng.RandomBytes(33).size(), 33u);
}

}  // namespace
}  // namespace nexus
