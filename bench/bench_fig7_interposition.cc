// Figure 7: interpositioning overhead on a packet echo server, in packets
// per second, for 100-byte and 1500-byte packets.
//
//   kern-int : echo answered by a direct function call (the paper's
//              "respond from the kernel interrupt handler")
//   user-int : echo via port dispatch, interposition machinery bypassed
//   kern-drv : realistic path — packet crosses driver and server over IPC
//   user-drv : same with the user-level driver process in the path
//   kref min/max : kernel-level reference monitor on the path, with the
//              monitor's decision cache on (min overhead) / off (max)
//   uref min/max : user-level reference monitor (extra marshal hop), cache
//              on / off
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "core/nexus.h"
#include "kernel/trace.h"
#include "services/ddrm.h"
#include "tpm/tpm.h"

namespace {

using nexus::Bytes;
using nexus::ToBytes;
using nexus::kernel::IpcContext;
using nexus::kernel::IpcMessage;
using nexus::kernel::IpcReply;

// The echo server: reverses no bytes, just bounces the payload.
class EchoServer : public nexus::kernel::PortHandler {
 public:
  IpcReply Handle(const IpcContext&, const IpcMessage& message) override {
    IpcReply reply = IpcReply::Ok();
    reply.data = message.data;
    return reply;
  }
};

// The user-level driver: receives a "packet", forwards it to the server
// port over IPC, relays the reply.
class DriverProcess : public nexus::kernel::PortHandler {
 public:
  DriverProcess(nexus::kernel::Kernel* kernel, nexus::kernel::ProcessId self,
                nexus::kernel::PortId server_port)
      : kernel_(kernel), self_(self), server_port_(server_port) {}

  IpcReply Handle(const IpcContext&, const IpcMessage& message) override {
    static const nexus::kernel::OpId send_op = nexus::kernel::InternOp("send");
    IpcMessage forwarded = IpcMessage::Of(send_op);
    forwarded.data = message.data;
    return kernel_->Call(self_, server_port_, forwarded);
  }

 private:
  nexus::kernel::Kernel* kernel_;
  nexus::kernel::ProcessId self_;
  nexus::kernel::PortId server_port_;
};

// A user-space reference monitor: pays an extra marshal/unmarshal round
// (the IPC hop into the monitor process) before delegating to the policy.
class UserSpaceMonitor : public nexus::kernel::Interceptor {
 public:
  explicit UserSpaceMonitor(nexus::services::DeviceDriverMonitor* inner) : inner_(inner) {}

  nexus::kernel::InterposeVerdict OnCall(const IpcContext& context,
                                         IpcMessage& message) override {
    auto wire = MarshalMessage(message);
    if (!wire.ok()) {
      return nexus::kernel::InterposeVerdict::kDeny;
    }
    auto unmarshaled = nexus::kernel::UnmarshalMessage(*wire);
    if (!unmarshaled.ok()) {
      return nexus::kernel::InterposeVerdict::kDeny;
    }
    IpcMessage copy = std::move(*unmarshaled);
    auto verdict = inner_->OnCall(context, copy);
    return verdict;
  }

  // The reply direction pays the same hop: the handler's reply marshals
  // into the monitor process and back (kernel-level monitors rewrite the
  // typed reply in place instead — that difference IS the uref-vs-kref
  // gap on the return path).
  nexus::kernel::InterposeVerdict OnReply(const IpcContext& context,
                                          const IpcMessage& request,
                                          IpcReply& reply) override {
    auto wire = MarshalReply(reply);
    if (!wire.ok()) {
      return nexus::kernel::InterposeVerdict::kDeny;
    }
    auto unmarshaled = nexus::kernel::UnmarshalReply(*wire);
    if (!unmarshaled.ok()) {
      return nexus::kernel::InterposeVerdict::kDeny;
    }
    reply = std::move(*unmarshaled);
    return inner_->OnReply(context, request, reply);
  }

 private:
  nexus::services::DeviceDriverMonitor* inner_;
};

struct Harness {
  Harness() : tpm_rng(42), tpm(tpm_rng), nexus(&tpm) {
    auto& k = nexus.kernel();
    client = *nexus.CreateProcess("udp-client", ToBytes("client"));
    server_pid = *nexus.CreateProcess("echo-server", ToBytes("echo"));
    driver_pid = *nexus.CreateProcess("netdriver", ToBytes("e1000"));
    server_port = *nexus.CreatePort(server_pid);
    driver_port = *nexus.CreatePort(driver_pid);
    k.BindHandler(server_port, &server);
    driver = std::make_unique<DriverProcess>(&k, driver_pid, server_port);
    k.BindHandler(driver_port, driver.get());

    nexus::services::DdrmPolicy policy;
    policy.allowed_operations = {"send", "recv"};
    monitor_cached = std::make_unique<nexus::services::DeviceDriverMonitor>(policy, true);
    monitor_uncached = std::make_unique<nexus::services::DeviceDriverMonitor>(policy, false);
    user_monitor_cached = std::make_unique<UserSpaceMonitor>(monitor_cached.get());
    user_monitor_uncached = std::make_unique<UserSpaceMonitor>(monitor_uncached.get());
  }

  nexus::Rng tpm_rng;
  nexus::tpm::Tpm tpm;
  nexus::core::Nexus nexus;
  EchoServer server;
  std::unique_ptr<DriverProcess> driver;
  nexus::kernel::ProcessId client = 0, server_pid = 0, driver_pid = 0;
  nexus::kernel::PortId server_port = 0, driver_port = 0;
  std::unique_ptr<nexus::services::DeviceDriverMonitor> monitor_cached;
  std::unique_ptr<nexus::services::DeviceDriverMonitor> monitor_uncached;
  std::unique_ptr<UserSpaceMonitor> user_monitor_cached;
  std::unique_ptr<UserSpaceMonitor> user_monitor_uncached;
};

Harness& H() {
  static Harness h;
  return h;
}

void ReportPps(benchmark::State& state) {
  state.counters["pps"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

IpcMessage Packet(int64_t size) {
  IpcMessage packet = IpcMessage::Of("recv");
  packet.data = Bytes(static_cast<size_t>(size), 0xab);
  return packet;
}

void BM_kern_int(benchmark::State& state) {
  Harness& h = H();
  IpcMessage packet = Packet(state.range(0));
  IpcContext context{h.client, h.server_port};
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.server.Handle(context, packet));
  }
  ReportPps(state);
}

void BM_user_int(benchmark::State& state) {
  Harness& h = H();
  h.nexus.kernel().set_interposition_enabled(false);
  IpcMessage packet = Packet(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.nexus.kernel().Call(h.client, h.server_port, packet));
  }
  h.nexus.kernel().set_interposition_enabled(true);
  ReportPps(state);
}

void RunThroughDriver(benchmark::State& state, bool interposition) {
  Harness& h = H();
  h.nexus.kernel().set_interposition_enabled(interposition);
  IpcMessage packet = Packet(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.nexus.kernel().Call(h.client, h.driver_port, packet));
  }
  h.nexus.kernel().set_interposition_enabled(true);
  ReportPps(state);
}

void BM_kern_drv(benchmark::State& state) { RunThroughDriver(state, false); }
void BM_user_drv(benchmark::State& state) { RunThroughDriver(state, true); }

void RunWithMonitor(benchmark::State& state, nexus::kernel::Interceptor* interceptor) {
  Harness& h = H();
  h.nexus.kernel().set_interposition_enabled(true);
  uint64_t token = *h.nexus.kernel().Interpose(h.driver_pid, h.driver_port, interceptor);
  IpcMessage packet = Packet(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.nexus.kernel().Call(h.client, h.driver_port, packet));
  }
  h.nexus.kernel().RemoveInterposition(token);
  ReportPps(state);
}

void BM_kref_min(benchmark::State& state) { RunWithMonitor(state, H().monitor_cached.get()); }
void BM_kref_max(benchmark::State& state) { RunWithMonitor(state, H().monitor_uncached.get()); }
// kref-min with the flight recorder live: same path, every Call emitting
// trace events into the per-thread ring. The delta against BM_kref_min is
// the whole observability tax (budget: <=5%).
void BM_kref_min_traced(benchmark::State& state) {
  nexus::kernel::FlightRecorder::Global().set_enabled(true);
  RunWithMonitor(state, H().monitor_cached.get());
  nexus::kernel::FlightRecorder::Global().set_enabled(false);
}
void BM_uref_min(benchmark::State& state) {
  RunWithMonitor(state, H().user_monitor_cached.get());
}
void BM_uref_max(benchmark::State& state) {
  RunWithMonitor(state, H().user_monitor_uncached.get());
}

BENCHMARK(BM_kern_int)->Arg(100)->Arg(1500);
BENCHMARK(BM_user_int)->Arg(100)->Arg(1500);
BENCHMARK(BM_kern_drv)->Arg(100)->Arg(1500);
BENCHMARK(BM_user_drv)->Arg(100)->Arg(1500);
BENCHMARK(BM_kref_min)->Arg(100)->Arg(1500);
BENCHMARK(BM_kref_min_traced)->Arg(100)->Arg(1500);
BENCHMARK(BM_kref_max)->Arg(100)->Arg(1500);
BENCHMARK(BM_uref_min)->Arg(100)->Arg(1500);
BENCHMARK(BM_uref_max)->Arg(100)->Arg(1500);

}  // namespace

NEXUS_BENCHMARK_MAIN();
