#include "harness/workload.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <thread>
#include <vector>

#include "apps/scenario_adapters.h"
#include "core/nexus.h"
#include "harness/zipf.h"
#include "kernel/trace.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace nexus::harness {
namespace {

using Clock = std::chrono::steady_clock;

enum class Verb : uint8_t { kAuthorize, kRead, kWrite, kSetGoal, kChurn };

// Weighted verb pick from one uniform draw.
Verb PickVerb(const WorkloadConfig& config, uint64_t draw) {
  if (draw < config.authorize_weight) {
    return Verb::kAuthorize;
  }
  draw -= config.authorize_weight;
  if (draw < config.read_weight) {
    return Verb::kRead;
  }
  draw -= config.read_weight;
  if (draw < config.write_weight) {
    return Verb::kWrite;
  }
  draw -= config.write_weight;
  if (draw < config.setgoal_weight) {
    return Verb::kSetGoal;
  }
  return Verb::kChurn;
}

void AppendJsonField(std::string* out, std::string_view key, uint64_t value,
                     bool comma = true) {
  *out += "\"";
  *out += key;
  *out += "\": " + std::to_string(value);
  if (comma) {
    *out += ",\n  ";
  }
}

// Clears + enables the global trace plane for a run, restores "off" on
// every exit path (including early errors), and makes the one-driver-at-a-
// time contract explicit.
class ScopedObservability {
 public:
  explicit ScopedObservability(bool enable) : enabled_(enable) {
    if (!enabled_) {
      return;
    }
    kernel::FlightRecorder::Global().Clear();
    kernel::MutationLog::Global().Clear();
    kernel::FlightRecorder::Global().set_enabled(true);
    kernel::MutationLog::Global().set_enabled(true);
  }
  ~ScopedObservability() {
    if (!enabled_) {
      return;
    }
    kernel::FlightRecorder::Global().set_enabled(false);
    kernel::MutationLog::Global().set_enabled(false);
  }

 private:
  bool enabled_;
};

// Forges a probe + verdict pair on the calling thread's ring. Emitting
// through the real FlightRecorder (not a side channel) is deliberate: the
// injected fault exercises the same drain path real corruption would.
void EmitForgedVerdict(kernel::ProcessId subject, kernel::OpId op, kernel::ObjectId obj,
                       uint64_t probe_gen, uint64_t verdict_gen, uint8_t verdict) {
  kernel::TraceScope trace;
  if (!trace.active()) {
    return;
  }
  kernel::TraceEvent probe;
  probe.trace_id = trace.id();
  probe.subject = subject;
  probe.op = op;
  probe.obj = obj;
  probe.generation = probe_gen;
  probe.stage = kernel::TraceStage::kCacheProbe;
  probe.flags = kernel::kTraceFlagCacheMiss;
  kernel::FlightRecorder::Global().Emit(probe);

  kernel::TraceEvent v = probe;
  v.generation = verdict_gen;
  v.stage = kernel::TraceStage::kVerdict;
  v.verdict = verdict;
  v.flags = 0;
  kernel::FlightRecorder::Global().Emit(v);
}

// Forges a completed interposed call WITHOUT its kReplyInterpose stage —
// the signature of a reply that bypassed the monitor chain. The follow-up
// event under a fresh trace id terminates the forged chain so the auditor
// proves it complete (structural checks skip truncated chains).
void EmitForgedRewrittenReply(kernel::ProcessId subject, kernel::OpId op,
                              kernel::PortId port) {
  {
    kernel::TraceScope trace;
    if (!trace.active()) {
      return;
    }
    kernel::TraceEvent call;
    call.trace_id = trace.id();
    call.subject = subject;
    call.op = op;
    call.aux = port;
    call.flags = kernel::kTraceFlagInterposed;
    call.verdict = kernel::kTraceVerdictAllow;
    call.stage = kernel::TraceStage::kCall;
    kernel::FlightRecorder::Global().Emit(call);
  }
  {
    kernel::TraceScope terminator;
    if (!terminator.active()) {
      return;
    }
    kernel::TraceEvent next;
    next.trace_id = terminator.id();
    next.subject = subject;
    next.stage = kernel::TraceStage::kSyscall;
    kernel::FlightRecorder::Global().Emit(next);
  }
}

// Replays what the mesh InvalidationPropagator does when a peer's
// invalidation arrives: a REAL subregion bump plus the epoch-stamped
// mutation record and kRemoteInvalidate trace event carrying the exact
// post-bump generations. (The record goes first — the auditor's harvest
// ingests mutations before events, and the join needs the record.)
void ApplyForgedRemoteInvalidation(kernel::Kernel* kernel, kernel::OpId op,
                                   kernel::ObjectId obj, uint64_t epoch) {
  std::vector<uint64_t> post_gens;
  kernel->decision_cache().InvalidateSubregion(op, obj, &post_gens);
  kernel::MutationRecord record;
  record.kind = kernel::MutationKind::kRemoteInvalidate;
  record.op = op;
  record.obj = obj;
  record.detail = epoch;
  record.generations = post_gens;
  kernel::MutationLog::Global().Append(record);
  kernel::TraceScope scope;
  if (!scope.active()) {
    return;
  }
  kernel::TraceEvent event;
  event.trace_id = scope.id();
  event.op = op;
  event.obj = obj;
  event.aux = epoch;
  event.flags = kernel::kTraceFlagRemote;
  event.stage = kernel::TraceStage::kRemoteInvalidate;
  event.generation =
      post_gens.empty() ? 0 : *std::max_element(post_gens.begin(), post_gens.end());
  kernel::FlightRecorder::Global().Emit(event);
}

}  // namespace

std::string WorkloadReport::ToJson() const {
  std::string out = "{\n  ";
  out += "\"scenario\": \"" + scenario + "\",\n  ";
  AppendJsonField(&out, "threads", threads);
  AppendJsonField(&out, "calls_completed", calls_completed);
  AppendJsonField(&out, "subjects", subjects);
  out += "\"wall_seconds\": " + std::to_string(wall_seconds) + ",\n  ";
  out += "\"throughput_ops\": " + std::to_string(throughput_ops) + ",\n  ";
  out += "\"latency_ns\": {";
  AppendJsonField(&out, "p50", p50_ns, false);
  out += ", ";
  AppendJsonField(&out, "p99", p99_ns, false);
  out += ", ";
  AppendJsonField(&out, "p999", p999_ns, false);
  out += "},\n  \"authorize_latency_ns\": {";
  AppendJsonField(&out, "p50", authorize_p50_ns, false);
  out += ", ";
  AppendJsonField(&out, "p99", authorize_p99_ns, false);
  out += ", ";
  AppendJsonField(&out, "p999", authorize_p999_ns, false);
  out += "},\n  ";
  AppendJsonField(&out, "allows", allows);
  AppendJsonField(&out, "denies", denies);
  AppendJsonField(&out, "op_errors", op_errors);
  out += "\"ops\": {";
  AppendJsonField(&out, "authorize", authorize_ops, false);
  out += ", ";
  AppendJsonField(&out, "read", read_ops, false);
  out += ", ";
  AppendJsonField(&out, "write", write_ops, false);
  out += ", ";
  AppendJsonField(&out, "setgoal", setgoal_ops, false);
  out += ", ";
  AppendJsonField(&out, "churn", churn_ops, false);
  out += "},\n  \"audit\": {";
  AppendJsonField(&out, "enabled", audited ? 1 : 0, false);
  out += ", ";
  AppendJsonField(&out, "events_ingested", audit.events_ingested, false);
  out += ", ";
  AppendJsonField(&out, "events_dropped", audit.events_dropped, false);
  out += ", ";
  AppendJsonField(&out, "mutations_ingested", audit.mutations_ingested, false);
  out += ", ";
  AppendJsonField(&out, "chains_finalized", audit.chains_finalized, false);
  out += ", ";
  AppendJsonField(&out, "complete_chains", audit.complete_chains, false);
  out += ", ";
  AppendJsonField(&out, "verdicts_checked", audit.verdicts_checked, false);
  out += ", ";
  AppendJsonField(&out, "serializability_violations", audit.serializability_violations,
                  false);
  out += ", ";
  AppendJsonField(&out, "stale_generation_violations", audit.stale_generation_violations,
                  false);
  out += ", ";
  AppendJsonField(&out, "guard_bypass_violations", audit.guard_bypass_violations, false);
  out += ", ";
  AppendJsonField(&out, "interposition_violations", audit.interposition_violations, false);
  out += ", ";
  AppendJsonField(&out, "remote_invalidation_violations",
                  audit.remote_invalidation_violations, false);
  out += ", ";
  AppendJsonField(&out, "clean", audit.clean() ? 1 : 0, false);
  out += "}\n}\n";
  return out;
}

Status WorkloadReport::WriteJson(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Internal("cannot open " + path + " for writing");
  }
  file << ToJson();
  file.flush();
  if (!file) {
    return Internal("short write to " + path);
  }
  return OkStatus();
}

Result<WorkloadReport> WorkloadDriver::Run() {
  const uint64_t total_weight = config_.authorize_weight + config_.read_weight +
                                config_.write_weight + config_.setgoal_weight +
                                config_.churn_weight;
  if (total_weight == 0) {
    return InvalidArgument("workload op mix has zero total weight");
  }
  if (config_.threads == 0) {
    return InvalidArgument("workload needs at least one thread");
  }
  Result<apps::ScenarioSpec> spec = apps::ScenarioByName(config_.scenario);
  NEXUS_RETURN_IF_ERROR(spec.status());

  // Observability on BEFORE setup: the setup-time SetGoal/SetProof
  // mutations are what give the auditor its initial timeline (audited
  // pairs are registered with initial_goal_id = 0 / "no goal yet").
  ScopedObservability observability(config_.audit);

  Rng boot_rng(config_.seed);
  tpm::Tpm tpm(boot_rng);
  core::Nexus nexus(&tpm);

  apps::WorkloadScenario::Params params;
  params.objects = config_.objects;
  params.audited = config_.audited_objects;
  params.proof_holders = config_.proof_holders;
  Result<std::unique_ptr<apps::WorkloadScenario>> scenario =
      apps::WorkloadScenario::Create(&nexus, *spec, params);
  NEXUS_RETURN_IF_ERROR(scenario.status());
  apps::WorkloadScenario& sc = **scenario;

  TraceAuditor::Config auditor_config;
  auditor_config.cache_shards = nexus.kernel().decision_cache().config().num_shards;
  auditor_config.cache_subregions = nexus.kernel().decision_cache().config().num_subregions;
  TraceAuditor auditor(auditor_config);
  if (config_.audit) {
    for (size_t i = 0; i < sc.audited(); ++i) {
      auditor.AuditPair(sc.read_op(), sc.objects()[i], sc.allow_goal_id(),
                        /*initial_goal_id=*/nal::kInvalidFormulaId, sc.proof_holders());
    }
    if (sc.interposed()) {
      auditor.RequireInterposed(sc.service_port());
    }
  }

  metrics::Registry registry;  // Run-local: quantiles unpolluted by other runs.
  metrics::MetricGroup group(&registry, "workload");
  metrics::Histogram* latency = group.NewHistogram("latency_ns");
  metrics::Histogram* authorize_latency = group.NewHistogram("authorize_latency_ns");

  // Zipf tables are O(n) to build; construct once, share (Sample is const).
  const ZipfSampler subject_zipf(config_.subjects, config_.subject_theta);
  const ZipfSampler object_zipf(config_.objects, config_.object_theta);

  std::atomic<uint64_t> issued{0};
  std::atomic<uint64_t> allows{0}, denies{0}, op_errors{0};
  std::atomic<uint64_t> verb_counts[5] = {};
  std::atomic<bool> harvest_stop{false};

  std::thread harvester;
  if (config_.audit) {
    harvester = std::thread([&] {
      while (!harvest_stop.load(std::memory_order_acquire)) {
        auditor.Harvest();
        std::this_thread::sleep_for(std::chrono::microseconds(config_.harvest_interval_us));
      }
    });
  }

  const Clock::time_point start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(config_.threads);
  for (size_t t = 0; t < config_.threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(config_.seed * 0x9E3779B97F4A7C15ull + t + 1);
      const std::chrono::nanoseconds period(
          config_.open_loop && config_.open_loop_rate > 0
              ? 1'000'000'000ull / config_.open_loop_rate
              : 0);
      Clock::time_point next_issue = Clock::now();
      uint64_t local_allows = 0, local_denies = 0, local_errors = 0;
      uint64_t local_verbs[5] = {};
      while (true) {
        const uint64_t i = issued.fetch_add(1, std::memory_order_relaxed);
        if (i >= config_.logical_calls) {
          break;
        }
        if (config_.open_loop && period.count() > 0) {
          std::this_thread::sleep_until(next_issue);
          next_issue += period;
        }
        const Verb verb = PickVerb(config_, rng.NextBelow(total_weight));
        const kernel::ProcessId subject = sc.SubjectAt(subject_zipf.Sample(rng));
        const size_t object = static_cast<size_t>(object_zipf.Sample(rng));
        const Clock::time_point op_start = Clock::now();
        Status status = OkStatus();
        switch (verb) {
          case Verb::kAuthorize:
            status = sc.Authorize(subject, object);
            (status.ok() ? local_allows : local_denies)++;
            break;
          case Verb::kRead:
            if (config_.callmany_batch > 1) {
              // One boundary crossing for the whole batch; replies are
              // counted individually so allow/deny totals stay per-op.
              size_t oks = 0;
              status = sc.ReadBatch(subject, object, config_.callmany_batch, &oks);
              local_allows += oks;
              local_denies += config_.callmany_batch - oks;
            } else {
              status = sc.Read(subject, object);
              (status.ok() ? local_allows : local_denies)++;
            }
            break;
          case Verb::kWrite:
            status = sc.Write(subject, object);
            (status.ok() ? local_allows : local_denies)++;
            break;
          case Verb::kSetGoal:
            if (!sc.FlipGoal(rng.NextBelow(sc.audited() == 0 ? 1 : sc.audited())).ok()) {
              ++local_errors;
            }
            break;
          case Verb::kChurn:
            if (!sc.Churn("churn_" + std::to_string(t) + "_" + std::to_string(i)).ok()) {
              ++local_errors;
            }
            break;
        }
        const uint64_t ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - op_start)
                .count());
        latency->Record(ns);
        if (verb == Verb::kAuthorize) {
          authorize_latency->Record(ns);
        }
        ++local_verbs[static_cast<size_t>(verb)];
      }
      allows.fetch_add(local_allows, std::memory_order_relaxed);
      denies.fetch_add(local_denies, std::memory_order_relaxed);
      op_errors.fetch_add(local_errors, std::memory_order_relaxed);
      for (size_t v = 0; v < 5; ++v) {
        verb_counts[v].fetch_add(local_verbs[v], std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const double wall =
      std::chrono::duration_cast<std::chrono::duration<double>>(Clock::now() - start)
          .count();

  if (config_.audit) {
    harvest_stop.store(true, std::memory_order_release);
    harvester.join();
    // Fault injection happens after the workers drain so the forged events
    // land against a quiescent, fully-logged mutation timeline.
    if (config_.inject_stale_verdict && sc.audited() > 0) {
      const kernel::AuthzRequest request{sc.proof_holders()[0], sc.read_op(),
                                         sc.objects()[0]};
      const uint64_t current = nexus.kernel().decision_cache().Generation(request);
      EmitForgedVerdict(request.subject, request.op, request.obj,
                        /*probe_gen=*/current, /*verdict_gen=*/1,
                        kernel::kTraceVerdictAllow);
    }
    if (config_.inject_wrong_verdict && sc.audited() > 0) {
      // A subject that was never granted a proof observed "allow": no
      // serial replay of the logged mutations can produce that.
      const kernel::ProcessId intruder = sc.SubjectAt(config_.subjects + 7);
      const kernel::AuthzRequest request{intruder, sc.read_op(), sc.objects()[0]};
      const uint64_t current = nexus.kernel().decision_cache().Generation(request);
      EmitForgedVerdict(intruder, request.op, request.obj, current, current,
                        kernel::kTraceVerdictAllow);
    }
    if (config_.inject_rewritten_reply && sc.interposed()) {
      // A completed call on the interposed port whose chain lacks the
      // kReplyInterpose stage: the reply-path invariant must flag it.
      EmitForgedRewrittenReply(sc.proof_holders().empty() ? 1 : sc.proof_holders()[0],
                               sc.read_op(), sc.service_port());
    }
    if (config_.inject_stale_remote_verdict && sc.audited() > 0) {
      // A peer's invalidation retires the pair's subregion here, then a
      // verdict below the remote-raised mark is served — a cached answer
      // that outlived its cross-node retirement. Probe gen 0 keeps the
      // probe out of the monotonicity check; verdict gen 1 sits below any
      // post-bump stamp (setup's SetGoal alone bumps past it).
      ApplyForgedRemoteInvalidation(&nexus.kernel(), sc.read_op(), sc.objects()[0],
                                    /*epoch=*/1);
      EmitForgedVerdict(sc.proof_holders()[0], sc.read_op(), sc.objects()[0],
                        /*probe_gen=*/0, /*verdict_gen=*/1, kernel::kTraceVerdictAllow);
    }
  }

  WorkloadReport report;
  report.scenario = config_.scenario;
  report.threads = config_.threads;
  report.calls_completed = config_.logical_calls;
  report.subjects = config_.subjects;
  report.wall_seconds = wall;
  report.throughput_ops = wall > 0 ? static_cast<double>(config_.logical_calls) / wall : 0;
  report.allows = allows.load();
  report.denies = denies.load();
  report.op_errors = op_errors.load();
  report.authorize_ops = verb_counts[0].load();
  report.read_ops = verb_counts[1].load();
  report.write_ops = verb_counts[2].load();
  report.setgoal_ops = verb_counts[3].load();
  report.churn_ops = verb_counts[4].load();

  metrics::Snapshot snapshot = registry.TakeSnapshot("workload");
  if (auto it = snapshot.find("workload.latency_ns"); it != snapshot.end()) {
    report.p50_ns = it->second.ApproxQuantile(0.5);
    report.p99_ns = it->second.ApproxQuantile(0.99);
    report.p999_ns = it->second.ApproxQuantile(0.999);
  }
  if (auto it = snapshot.find("workload.authorize_latency_ns"); it != snapshot.end()) {
    report.authorize_p50_ns = it->second.ApproxQuantile(0.5);
    report.authorize_p99_ns = it->second.ApproxQuantile(0.99);
    report.authorize_p999_ns = it->second.ApproxQuantile(0.999);
  }

  if (config_.audit) {
    auditor.Harvest();  // Workers + injector are quiescent; final sweep.
    report.audit = auditor.Finish();
    report.audited = true;
  }
  return report;
}

}  // namespace nexus::harness
