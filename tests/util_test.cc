#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/status.h"

namespace nexus {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = PermissionDenied("proof does not discharge goal");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(s.ToString(), "PERMISSION_DENIED: proof does not discharge goal");
}

TEST(StatusTest, AllErrorCodesHaveNames) {
  for (int i = 0; i <= static_cast<int>(ErrorCode::kInternal); ++i) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(i)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("no such label");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(BytesTest, RoundTripStringConversion) {
  Bytes b = ToBytes("nexus");
  EXPECT_EQ(ToString(b), "nexus");
}

TEST(BytesTest, HexEncode) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(HexEncode(b), "0001abff");
}

TEST(BytesTest, HexDecodeRoundTrip) {
  Result<Bytes> decoded = HexDecode("0001abff");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, (Bytes{0x00, 0x01, 0xab, 0xff}));
}

TEST(BytesTest, HexDecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").ok());
}

TEST(BytesTest, HexDecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").ok());
}

TEST(BytesTest, HexDecodeAcceptsUpperCase) {
  Result<Bytes> decoded = HexDecode("ABFF");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, (Bytes{0xab, 0xff}));
}

TEST(BytesTest, ConstantTimeEquals) {
  Bytes a = ToBytes("secret");
  Bytes b = ToBytes("secret");
  Bytes c = ToBytes("secreT");
  Bytes d = ToBytes("secre");
  EXPECT_TRUE(ConstantTimeEquals(a, b));
  EXPECT_FALSE(ConstantTimeEquals(a, c));
  EXPECT_FALSE(ConstantTimeEquals(a, d));
}

TEST(BytesTest, U32RoundTrip) {
  Bytes buf;
  AppendU32(buf, 0xdeadbeef);
  ByteReader reader(buf);
  Result<uint32_t> v = reader.ReadU32();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0xdeadbeefu);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, U64RoundTrip) {
  Bytes buf;
  AppendU64(buf, 0x0123456789abcdefULL);
  ByteReader reader(buf);
  Result<uint64_t> v = reader.ReadU64();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0x0123456789abcdefULL);
}

TEST(BytesTest, LengthPrefixedRoundTrip) {
  Bytes buf;
  AppendLengthPrefixed(buf, ToBytes("alpha"));
  AppendLengthPrefixed(buf, ToBytes(""));
  AppendLengthPrefixed(buf, ToBytes("beta"));
  ByteReader reader(buf);
  EXPECT_EQ(ToString(*reader.ReadLengthPrefixed()), "alpha");
  EXPECT_EQ(ToString(*reader.ReadLengthPrefixed()), "");
  EXPECT_EQ(ToString(*reader.ReadLengthPrefixed()), "beta");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, ReaderRejectsTruncatedInput) {
  Bytes buf = {0x00, 0x00, 0x00, 0x08, 0x01};  // Claims 8 bytes, has 1.
  ByteReader reader(buf);
  EXPECT_FALSE(reader.ReadLengthPrefixed().ok());
}

TEST(BytesTest, ReaderRejectsShortU32) {
  Bytes buf = {0x01, 0x02};
  ByteReader reader(buf);
  EXPECT_FALSE(reader.ReadU32().ok());
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(7);
  bool seen[5] = {false};
  for (int i = 0; i < 200; ++i) {
    seen[rng.NextBelow(5)] = true;
  }
  for (bool s : seen) {
    EXPECT_TRUE(s);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoolProbabilityExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, RandomBytesLength) {
  Rng rng(11);
  EXPECT_EQ(rng.RandomBytes(0).size(), 0u);
  EXPECT_EQ(rng.RandomBytes(1).size(), 1u);
  EXPECT_EQ(rng.RandomBytes(33).size(), 33u);
}

// ------------------------------------------------------------ metrics

TEST(MetricsTest, CounterAndGaugeBasics) {
  metrics::Registry registry;
  metrics::MetricGroup group(&registry, "test");
  metrics::Counter* c = group.NewCounter("hits");
  metrics::Gauge* g = group.NewGauge("depth");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  g->Set(7);
  g->Add(-2);
  EXPECT_EQ(g->Value(), 5);

  metrics::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.at("test.hits").value, 42);
  EXPECT_EQ(snap.at("test.depth").value, 5);
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  metrics::Histogram h;
  h.Record(0);    // bucket 0
  h.Record(1);    // bucket 1
  h.Record(5);    // bucket 3: [4, 8)
  h.Record(5);
  h.Record(900);  // bucket 10: [512, 1024)
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 911u);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(3), 2u);
  EXPECT_EQ(h.BucketCount(10), 1u);
}

TEST(MetricsTest, SnapshotAggregatesAcrossInstancesAndRetirement) {
  metrics::Registry registry;
  metrics::MetricGroup a(&registry, "guard");
  a.NewCounter("checks")->Increment(10);
  {
    // A second instance with the same prefix: the registry view sums them,
    // while each instance's own pointer still reads its private tally.
    metrics::MetricGroup b(&registry, "guard");
    metrics::Counter* b_checks = b.NewCounter("checks");
    b_checks->Increment(5);
    EXPECT_EQ(b_checks->Value(), 5u);
    EXPECT_EQ(registry.TakeSnapshot().at("guard.checks").value, 15);
  }
  // `b` died; its total is retired, not lost.
  EXPECT_EQ(registry.TakeSnapshot().at("guard.checks").value, 15);
}

TEST(MetricsTest, SnapshotPrefixFilters) {
  metrics::Registry registry;
  metrics::MetricGroup cache(&registry, "cache");
  metrics::MetricGroup engine(&registry, "engine");
  cache.NewCounter("hits")->Increment();
  engine.NewCounter("misses")->Increment();
  metrics::Snapshot snap = registry.TakeSnapshot("cache");
  EXPECT_TRUE(snap.contains("cache.hits"));
  EXPECT_FALSE(snap.contains("engine.misses"));
}

TEST(MetricsTest, RenderTextAndJson) {
  metrics::Registry registry;
  metrics::MetricGroup group(&registry, "kernel");
  group.NewCounter("calls")->Increment(3);
  metrics::Histogram* lat = group.NewHistogram("cycles");
  for (int i = 0; i < 100; ++i) {
    lat->Record(1000);
  }
  std::string text = registry.RenderText("kernel");
  EXPECT_NE(text.find("kernel.calls 3"), std::string::npos);
  EXPECT_NE(text.find("kernel.cycles count=100"), std::string::npos);
  // 1000 has bit width 10, so every quantile reports the 2^10-1 bound.
  EXPECT_NE(text.find("p99=1023"), std::string::npos);
  std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"kernel.calls\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"kernel.cycles\": {\"count\": 100"), std::string::npos);
}

TEST(MetricsTest, ApproxQuantileWalksBuckets) {
  metrics::Registry registry;
  metrics::MetricGroup group(&registry, "q");
  metrics::Histogram* h = group.NewHistogram("h");
  for (int i = 0; i < 90; ++i) {
    h->Record(3);  // bucket 2, bound 3.
  }
  for (int i = 0; i < 10; ++i) {
    h->Record(1 << 20);  // bucket 21.
  }
  metrics::InstrumentValue v = registry.TakeSnapshot().at("q.h");
  EXPECT_EQ(v.ApproxQuantile(0.5), 3u);
  EXPECT_GT(v.ApproxQuantile(0.99), 1u << 19);
}

}  // namespace
}  // namespace nexus
