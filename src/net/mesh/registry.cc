#include "net/mesh/registry.h"

#include "crypto/sha256.h"

namespace nexus::net::mesh {

Bytes PeerRecord::SerializeRecord() const {
  Bytes out;
  AppendLengthPrefixed(out, ToBytes(name));
  AppendLengthPrefixed(out, ek);
  return out;
}

Result<PeerRecord> PeerRecord::DeserializeRecord(ByteView data) {
  ByteReader reader(data);
  Result<Bytes> name = reader.ReadLengthPrefixed();
  if (!name.ok()) {
    return name.status();
  }
  Result<Bytes> ek = reader.ReadLengthPrefixed();
  if (!ek.ok()) {
    return ek.status();
  }
  if (!reader.AtEnd()) {
    return InvalidArgument("peer record: trailing bytes");
  }
  return PeerRecord{ToString(*name), std::move(*ek)};
}

MeshRegistry::Import MeshRegistry::ImportPeer(const PeerRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = peers_.try_emplace(record.name, record.ek);
  if (inserted) {
    return Import::kNew;
  }
  if (it->second == record.ek) {
    return Import::kDuplicate;
  }
  ++conflicts_;
  return Import::kConflict;
}

MeshRegistry::Import MeshRegistry::ImportCertificate(const Bytes& cert_bytes) {
  std::string digest = crypto::Sha256Hex(cert_bytes);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = certs_.try_emplace(std::move(digest), cert_bytes);
  return inserted ? Import::kNew : Import::kDuplicate;
}

bool MeshRegistry::HasPeer(const NodeId& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return peers_.count(name) != 0;
}

bool MeshRegistry::HasCertificate(const std::string& digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  return certs_.count(digest) != 0;
}

std::vector<PeerRecord> MeshRegistry::Peers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PeerRecord> out;
  out.reserve(peers_.size());
  for (const auto& [name, ek] : peers_) {
    out.push_back(PeerRecord{name, ek});
  }
  return out;
}

std::vector<Bytes> MeshRegistry::Certificates() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Bytes> out;
  out.reserve(certs_.size());
  for (const auto& [digest, bytes] : certs_) {
    out.push_back(bytes);
  }
  return out;
}

size_t MeshRegistry::peer_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peers_.size();
}

size_t MeshRegistry::cert_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return certs_.size();
}

uint64_t MeshRegistry::conflicts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conflicts_;
}

Bytes MeshRegistry::CanonicalSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Bytes out;
  // std::map iteration IS the canonical order (sorted by key), so the
  // serialization is order-independent by construction.
  AppendU32(out, static_cast<uint32_t>(peers_.size()));
  for (const auto& [name, ek] : peers_) {
    AppendLengthPrefixed(out, ToBytes(name));
    AppendLengthPrefixed(out, ek);
  }
  AppendU32(out, static_cast<uint32_t>(certs_.size()));
  for (const auto& [digest, bytes] : certs_) {
    AppendLengthPrefixed(out, bytes);
  }
  return out;
}

std::string MeshRegistry::Digest() const { return crypto::Sha256Hex(CanonicalSnapshot()); }

}  // namespace nexus::net::mesh
