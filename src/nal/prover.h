// Bounded, goal-directed proof construction.
//
// NAL proof derivation is undecidable in general, so the *guard* never
// searches (§2.6). Clients, however, need to assemble proofs from the
// credentials they hold; this helper performs depth-bounded backward
// chaining over the common rule shapes (premise lookup, conjunction
// splitting, delegation chains via handoff/subprincipal/transitivity,
// says-distribution, and authority queries). Every proof it returns is
// validated by the checker before use, so the prover needs to be sound in
// practice but is deliberately incomplete.
#ifndef NEXUS_NAL_PROVER_H_
#define NEXUS_NAL_PROVER_H_

#include <functional>
#include <vector>

#include "nal/checker.h"
#include "nal/formula.h"
#include "nal/proof.h"
#include "util/status.h"

namespace nexus::nal {

struct ProverOptions {
  // Maximum backward-chaining depth.
  int max_depth = 8;
  // If set, formulas this predicate accepts may be discharged by authority
  // leaves instead of premises (the caller knows which authorities exist).
  std::function<bool(const Formula&)> may_query_authority;
};

// Attempts to construct a proof of `goal` (which may contain $-variables)
// from `credentials`. Returns NOT_FOUND if the bounded search fails.
Result<Proof> AutoProve(const Formula& goal, const std::vector<Formula>& credentials,
                        const ProverOptions& options = {});

}  // namespace nexus::nal

#endif  // NEXUS_NAL_PROVER_H_
