// Cycle counting for the microbenchmarks. The paper reports system-call and
// authorization costs in CPU cycles (Table 1, Fig. 4); we use rdtsc where
// available and fall back to a steady_clock-derived estimate elsewhere.
#ifndef NEXUS_UTIL_CYCLES_H_
#define NEXUS_UTIL_CYCLES_H_

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace nexus {

// Reads the CPU timestamp counter. Monotonic on modern x86 (invariant TSC).
inline uint64_t ReadCycleCounter() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
#endif
}

// Scoped cycle measurement: accumulates elapsed cycles into a sink.
class ScopedCycleTimer {
 public:
  explicit ScopedCycleTimer(uint64_t& sink) : sink_(sink), start_(ReadCycleCounter()) {}
  ~ScopedCycleTimer() { sink_ += ReadCycleCounter() - start_; }

  ScopedCycleTimer(const ScopedCycleTimer&) = delete;
  ScopedCycleTimer& operator=(const ScopedCycleTimer&) = delete;

 private:
  uint64_t& sink_;
  uint64_t start_;
};

}  // namespace nexus

#endif  // NEXUS_UTIL_CYCLES_H_
