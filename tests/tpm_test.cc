#include <gtest/gtest.h>

#include "tpm/tpm.h"
#include "util/rng.h"

namespace nexus::tpm {
namespace {

class TpmTest : public ::testing::Test {
 protected:
  TpmTest() : rng_(101), tpm_(rng_) {}

  // Simulates a measured boot into the canonical PCR state.
  void MeasuredBoot() {
    tpm_.PowerCycle();
    tpm_.MeasureAndExtend(0, ToBytes("firmware"));
    tpm_.MeasureAndExtend(1, ToBytes("loader"));
    tpm_.MeasureAndExtend(2, ToBytes("kernel"));
  }

  Rng rng_;
  Tpm tpm_;
};

TEST_F(TpmTest, PcrsStartAtZero) {
  Result<PcrValue> pcr = tpm_.ReadPcr(0);
  ASSERT_TRUE(pcr.ok());
  EXPECT_EQ(*pcr, PcrValue{});
}

TEST_F(TpmTest, ExtendChangesValueDeterministically) {
  crypto::Sha1Digest m = crypto::Sha1::Hash(ToBytes("kernel-image"));
  tpm_.ExtendPcr(2, m);
  Result<PcrValue> first = tpm_.ReadPcr(2);

  Rng rng2(999);
  Tpm other(rng2);
  other.ExtendPcr(2, m);
  EXPECT_EQ(*first, *other.ReadPcr(2));
}

TEST_F(TpmTest, ExtendOrderMatters) {
  Rng rng2(5);
  Tpm other(rng2);
  tpm_.MeasureAndExtend(0, ToBytes("a"));
  tpm_.MeasureAndExtend(0, ToBytes("b"));
  other.MeasureAndExtend(0, ToBytes("b"));
  other.MeasureAndExtend(0, ToBytes("a"));
  EXPECT_NE(*tpm_.ReadPcr(0), *other.ReadPcr(0));
}

TEST_F(TpmTest, PcrIndexBounds) {
  EXPECT_FALSE(tpm_.ExtendPcr(-1, {}).ok());
  EXPECT_FALSE(tpm_.ExtendPcr(kNumPcrs, {}).ok());
  EXPECT_FALSE(tpm_.ReadPcr(kNumPcrs).ok());
}

TEST_F(TpmTest, PowerCycleResetsPcrsAndBumpsBootCounter) {
  tpm_.MeasureAndExtend(0, ToBytes("x"));
  uint64_t boots = tpm_.boot_counter();
  tpm_.PowerCycle();
  EXPECT_EQ(*tpm_.ReadPcr(0), PcrValue{});
  EXPECT_EQ(tpm_.boot_counter(), boots + 1);
}

TEST_F(TpmTest, CompositeDeduplicatesAndSorts) {
  MeasuredBoot();
  Result<Bytes> a = tpm_.ReadComposite({0, 1, 2});
  Result<Bytes> b = tpm_.ReadComposite({2, 0, 1, 0});
  EXPECT_EQ(*a, *b);
}

TEST_F(TpmTest, TakeOwnershipOnce) {
  MeasuredBoot();
  EXPECT_TRUE(tpm_.TakeOwnership(rng_, {0, 1, 2}).ok());
  EXPECT_TRUE(tpm_.IsOwned());
  EXPECT_FALSE(tpm_.TakeOwnership(rng_, {0, 1, 2}).ok());
}

TEST_F(TpmTest, DirAccessRequiresMatchingPcrs) {
  MeasuredBoot();
  tpm_.TakeOwnership(rng_, {0, 1, 2});
  crypto::Sha1Digest value = crypto::Sha1::Hash(ToBytes("root-hash"));
  EXPECT_TRUE(tpm_.WriteDir(0, value).ok());
  EXPECT_EQ(*tpm_.ReadDir(0), value);

  // A different boot (different kernel measured) cannot touch the DIRs.
  tpm_.PowerCycle();
  tpm_.MeasureAndExtend(0, ToBytes("firmware"));
  tpm_.MeasureAndExtend(1, ToBytes("loader"));
  tpm_.MeasureAndExtend(2, ToBytes("EVIL-kernel"));
  EXPECT_FALSE(tpm_.ReadDir(0).ok());
  EXPECT_FALSE(tpm_.WriteDir(0, value).ok());

  // Booting the legitimate kernel again restores access and the value.
  MeasuredBoot();
  EXPECT_EQ(*tpm_.ReadDir(0), value);
}

TEST_F(TpmTest, DirIndexBounds) {
  MeasuredBoot();
  tpm_.TakeOwnership(rng_, {0, 1, 2});
  EXPECT_FALSE(tpm_.WriteDir(kNumDirs, {}).ok());
  EXPECT_FALSE(tpm_.ReadDir(-1).ok());
}

TEST_F(TpmTest, SealUnsealRoundTrip) {
  MeasuredBoot();
  tpm_.TakeOwnership(rng_, {0, 1, 2});
  Bytes secret = ToBytes("nexus kernel key material");
  Result<Bytes> blob = tpm_.Seal(secret, {0, 1, 2});
  ASSERT_TRUE(blob.ok());
  Result<Bytes> unsealed = tpm_.Unseal(*blob);
  ASSERT_TRUE(unsealed.ok());
  EXPECT_EQ(*unsealed, secret);
}

TEST_F(TpmTest, UnsealFailsUnderDifferentPcrState) {
  MeasuredBoot();
  tpm_.TakeOwnership(rng_, {0, 1, 2});
  Result<Bytes> blob = tpm_.Seal(ToBytes("secret"), {0, 1, 2});
  ASSERT_TRUE(blob.ok());

  tpm_.PowerCycle();
  tpm_.MeasureAndExtend(0, ToBytes("firmware"));
  tpm_.MeasureAndExtend(1, ToBytes("loader"));
  tpm_.MeasureAndExtend(2, ToBytes("modified-kernel"));
  EXPECT_FALSE(tpm_.Unseal(*blob).ok());
}

TEST_F(TpmTest, UnsealDetectsTampering) {
  MeasuredBoot();
  tpm_.TakeOwnership(rng_, {0, 1, 2});
  Result<Bytes> blob = tpm_.Seal(ToBytes("secret"), {0, 1, 2});
  ASSERT_TRUE(blob.ok());
  Bytes tampered = *blob;
  tampered[tampered.size() - 1] ^= 0x80;
  Result<Bytes> unsealed = tpm_.Unseal(tampered);
  EXPECT_FALSE(unsealed.ok());
  EXPECT_EQ(unsealed.status().code(), ErrorCode::kCorruption);
}

TEST_F(TpmTest, SealRequiresOwnership) {
  MeasuredBoot();
  EXPECT_FALSE(tpm_.Seal(ToBytes("x"), {0}).ok());
}

TEST_F(TpmTest, QuoteVerifies) {
  MeasuredBoot();
  Bytes nonce = ToBytes("challenge-123");
  Result<Bytes> sig = tpm_.Quote(nonce, {0, 1, 2});
  ASSERT_TRUE(sig.ok());
  Bytes composite = *tpm_.ReadComposite({0, 1, 2});
  EXPECT_TRUE(Tpm::VerifyQuote(tpm_.endorsement_public_key(), nonce, composite, *sig));
}

TEST_F(TpmTest, QuoteRejectsWrongNonceOrComposite) {
  MeasuredBoot();
  Bytes nonce = ToBytes("challenge-123");
  Result<Bytes> sig = tpm_.Quote(nonce, {0, 1, 2});
  Bytes composite = *tpm_.ReadComposite({0, 1, 2});
  EXPECT_FALSE(
      Tpm::VerifyQuote(tpm_.endorsement_public_key(), ToBytes("other"), composite, *sig));
  Bytes wrong = composite;
  wrong[0] ^= 1;
  EXPECT_FALSE(Tpm::VerifyQuote(tpm_.endorsement_public_key(), nonce, wrong, *sig));
}

TEST_F(TpmTest, QuoteBindsToPcrState) {
  MeasuredBoot();
  Bytes nonce = ToBytes("n");
  Bytes old_composite = *tpm_.ReadComposite({0, 1, 2});
  tpm_.MeasureAndExtend(2, ToBytes("late-loaded-module"));
  Result<Bytes> sig = tpm_.Quote(nonce, {0, 1, 2});
  // The new quote does not verify against the pre-extension composite.
  EXPECT_FALSE(Tpm::VerifyQuote(tpm_.endorsement_public_key(), nonce, old_composite, *sig));
}

TEST_F(TpmTest, NvramDefineWriteRead) {
  MeasuredBoot();
  tpm_.TakeOwnership(rng_, {0, 1, 2});
  ASSERT_TRUE(tpm_.NvDefine(7, 64, /*pcr_bound=*/false).ok());
  EXPECT_FALSE(tpm_.NvDefine(7, 64, false).ok());  // Redefinition.
  EXPECT_TRUE(tpm_.NvWrite(7, ToBytes("hello")).ok());
  Result<Bytes> data = tpm_.NvRead(7);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 64u);
  EXPECT_EQ(ToString(ByteView(data->data(), 5)), "hello");
}

TEST_F(TpmTest, NvramRespectsSizeAndDefinition) {
  EXPECT_FALSE(tpm_.NvWrite(9, ToBytes("x")).ok());  // Undefined.
  tpm_.NvDefine(9, 4, false);
  EXPECT_FALSE(tpm_.NvWrite(9, ToBytes("too long")).ok());
}

TEST_F(TpmTest, PcrBoundNvramGatedOnPolicy) {
  MeasuredBoot();
  tpm_.TakeOwnership(rng_, {0, 1, 2});
  tpm_.NvDefine(3, 16, /*pcr_bound=*/true);
  EXPECT_TRUE(tpm_.NvWrite(3, ToBytes("guarded")).ok());
  tpm_.PowerCycle();  // PCRs now zero: policy unsatisfied.
  EXPECT_FALSE(tpm_.NvRead(3).ok());
  MeasuredBoot();
  EXPECT_TRUE(tpm_.NvRead(3).ok());
}

}  // namespace
}  // namespace nexus::tpm
