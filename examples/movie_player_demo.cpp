// The movie player (§4): platform lock-down vs logical attestation.
#include <cstdio>

#include "apps/movie_player.h"
#include "tpm/tpm.h"

using namespace nexus;

int main() {
  Rng tpm_rng(11);
  tpm::Tpm hardware_tpm(tpm_rng);
  core::Nexus nexus(&hardware_tpm);
  Bytes movie = ToBytes("4K-MOVIE-STREAM");

  // --- Axiomatic world: a binary whitelist.
  apps::ContentServer locked(&nexus, apps::ContentServer::Mode::kHashWhitelist, movie);
  Bytes blessed = ToBytes("vendor-player-v1.0");
  locked.WhitelistPlayer(blessed);

  auto vendor_player = *nexus.CreateProcess("player", blessed);
  auto my_player = *nexus.CreateProcess("myplayer", ToBytes("my-gpl-player"));

  std::printf("== hash-whitelist mode ==\n");
  std::printf("vendor player: %s\n", locked.RequestStream(vendor_player).status().ToString().c_str());
  std::printf("user's player: %s   <- lock-down: safe but unlisted\n",
              locked.RequestStream(my_player).status().ToString().c_str());

  // --- Logical attestation: any player that provably cannot leak.
  apps::ContentServer open_mode(&nexus, apps::ContentServer::Mode::kLogicalAttestation, movie);
  std::printf("== logical attestation mode ==\n");
  auto granted = open_mode.RequestStream(my_player);
  std::printf("user's player: %s   <- hash never divulged\n",
              granted.status().ToString().c_str());

  // A player holding a channel to the network is refused, whatever its hash.
  auto leaky = *nexus.CreateProcess("leaky-player", blessed);  // Even the blessed binary!
  auto netdrv = *nexus.CreateProcess("netdriver", ToBytes("nic"));
  auto port = *nexus.CreatePort(netdrv);
  nexus.kernel().ConnectPort(leaky, port);
  std::printf("leaky player : %s\n", open_mode.RequestStream(leaky).status().ToString().c_str());
  return 0;
}
