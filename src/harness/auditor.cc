#include "harness/auditor.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace nexus::harness {

using kernel::TraceEvent;
using kernel::TraceStage;

namespace {

std::string DescribeTuple(const TraceEvent& e) {
  std::string out = "subj=" + std::to_string(e.subject);
  std::string_view op = kernel::OpName(e.op);
  out += " op=" + (op.empty() ? std::to_string(e.op) : std::string(op));
  std::string_view obj = kernel::ObjectName(e.obj);
  out += " obj=" + (obj.empty() ? std::to_string(e.obj) : std::string(obj));
  return out;
}

}  // namespace

std::string TraceAuditor::Report::Summary() const {
  std::string out = "events=" + std::to_string(events_ingested);
  out += " dropped=" + std::to_string(events_dropped);
  out += " mutations=" + std::to_string(mutations_ingested);
  out += " chains=" + std::to_string(chains_finalized);
  out += " complete=" + std::to_string(complete_chains);
  out += " verdicts_checked=" + std::to_string(verdicts_checked);
  out += " violations=" + std::to_string(total_violations());
  if (total_violations() != 0) {
    out += " (serializability=" + std::to_string(serializability_violations);
    out += " stale_generation=" + std::to_string(stale_generation_violations);
    out += " guard_bypass=" + std::to_string(guard_bypass_violations);
    out += " interposition=" + std::to_string(interposition_violations);
    out += " stale_remote=" + std::to_string(remote_invalidation_violations) + ")";
  }
  return out;
}

TraceAuditor::TraceAuditor() : TraceAuditor(Config()) {}

TraceAuditor::TraceAuditor(Config config) : config_(config) {
  if (config_.cache_shards == 0) {
    config_.cache_shards = 1;
  }
  if (config_.cache_subregions == 0) {
    config_.cache_subregions = 1;
  }
}

void TraceAuditor::AuditPair(kernel::OpId op, kernel::ObjectId obj,
                             nal::FormulaId allow_goal_id, nal::FormulaId initial_goal_id,
                             std::span<const kernel::ProcessId> proof_holders) {
  AuditedPair pair;
  pair.allow_goal_id = allow_goal_id;
  pair.initial_goal_id = initial_goal_id;
  pair.holders.insert(proof_holders.begin(), proof_holders.end());
  pair.subregion = SubregionOf(op, obj);
  audited_[PairKey(op, obj)] = std::move(pair);
}

void TraceAuditor::RequireInterposed(kernel::PortId port) {
  interposed_ports_.insert(port);
}

void TraceAuditor::NoteDropped(uint64_t dropped) { report_.events_dropped += dropped; }

void TraceAuditor::AddViolation(uint64_t* counter, std::string_view kind,
                                std::string detail) {
  ++*counter;
  if (report_.samples.size() < config_.max_violation_samples) {
    report_.samples.push_back(Violation{std::string(kind), std::move(detail)});
  }
}

void TraceAuditor::IngestSegment(size_t ring, uint64_t begin_seq,
                                 std::span<const TraceEvent> events,
                                 bool lossless_start) {
  RingState& state = ring_states_[ring];
  if (state.expected_next != 0 && begin_seq != state.expected_next) {
    // Events were overwritten between harvests: the buffered run may be
    // missing its tail, and the first run of this segment its head.
    FinalizeRun(ring, &state, /*complete_tail=*/false);
    state.truncated = true;
  }
  if (state.expected_next == 0 && !lossless_start) {
    // First contact with a ring whose writer already wrapped: the oldest
    // retained run may be headless, and with no previous cursor position
    // the begin_seq check above cannot see it. Without this, a fast
    // worker that outruns the first harvest yields a chain whose
    // kReplyInterpose (or guard stage) was overwritten while its kCall
    // survived — flagged as a bypass that never happened.
    state.truncated = true;
  }
  for (const TraceEvent& e : events) {
    ++report_.events_ingested;
    CheckRingMonotonicity(ring, e);
    if (state.expected_next != 0 && e.timestamp != state.expected_next) {
      // A slot inside the drained window failed its seqlock validation
      // (writer lapped the reader mid-scan): same truncation story.
      FinalizeRun(ring, &state, /*complete_tail=*/false);
      state.truncated = true;
    }
    if (!state.run.empty() && e.trace_id != state.run.front().trace_id) {
      // The previous trace ended naturally — a different trace follows it
      // with no gap, so its run is complete through the tail.
      FinalizeRun(ring, &state, /*complete_tail=*/true);
    }
    state.run.push_back(e);
    state.expected_next = e.timestamp + 1;
  }
}

void TraceAuditor::FinalizeRun(size_t ring, RingState* state, bool complete_tail) {
  if (state->run.empty()) {
    state->truncated = false;
    return;
  }
  bool complete = !state->truncated && complete_tail;
  ++report_.chains_finalized;
  if (complete) {
    ++report_.complete_chains;
  }
  CheckChain(ring, state->run, complete);
  state->run.clear();
  state->truncated = false;
}

void TraceAuditor::CheckRingMonotonicity(size_t ring, const TraceEvent& event) {
  if (event.stage == TraceStage::kRemoteInvalidate) {
    // A peer's invalidation was applied here: raise this ring's high-water
    // marks for EVERY shard of the pair's subregion, tagged remote. The
    // event's generation word only holds the max over shards; the exact
    // per-shard stamps live in the mutation record, joined by
    // (pair, epoch) — IngestMutations runs before IngestSegment within a
    // harvest and the propagator appends the record before emitting the
    // event, so the join entry is always present. A missing entry (hand-
    // fed trace) soundly raises nothing.
    auto join = remote_inval_gens_.find(
        std::make_pair(PairKey(event.op, event.obj), event.aux));
    if (join == remote_inval_gens_.end()) {
      return;
    }
    size_t subregion = SubregionOf(event.op, event.obj);
    auto& marks = ring_gen_seen_[ring];
    for (size_t shard = 0; shard < join->second.size() && shard < config_.cache_shards;
         ++shard) {
      uint64_t key = static_cast<uint64_t>(subregion) * config_.cache_shards + shard;
      GenMark& mark = marks[key];
      if (join->second[shard] > mark.gen) {
        mark.gen = join->second[shard];
        mark.remote = true;
      }
    }
    return;
  }
  // Only decision-plane generation stamps participate (kGuardCheck reuses
  // the generation word for the observed goal id — a different axis).
  if (event.generation == 0 ||
      (event.stage != TraceStage::kCacheProbe && event.stage != TraceStage::kVerdict)) {
    return;
  }
  uint64_t key = static_cast<uint64_t>(SubregionOf(event.op, event.obj)) *
                     config_.cache_shards +
                 ShardOf(event.subject);
  GenMark& mark = ring_gen_seen_[ring][key];
  if (event.generation < mark.gen) {
    if (mark.remote) {
      // The mark was raised by a peer's invalidation: this verdict (or
      // probe) served a cached answer the mesh already retired — the
      // cross-node coherence failure the propagator exists to prevent.
      AddViolation(&report_.remote_invalidation_violations, "stale_remote_verdict",
                   "ring " + std::to_string(ring) + " " + DescribeTuple(event) +
                       " stage=" + std::string(kernel::TraceStageName(event.stage)) +
                       " gen=" + std::to_string(event.generation) +
                       " below remote-invalidation high-water " +
                       std::to_string(mark.gen));
    } else {
      AddViolation(&report_.stale_generation_violations, "stale_generation",
                   "ring " + std::to_string(ring) + " " + DescribeTuple(event) +
                       " stage=" + std::string(kernel::TraceStageName(event.stage)) +
                       " gen=" + std::to_string(event.generation) +
                       " below ring high-water " + std::to_string(mark.gen));
    }
    return;  // Keep the high-water mark; one bad stamp flags once.
  }
  mark.gen = event.generation;
  mark.remote = false;  // A locally-served stamp at/above the mark clears it.
}

void TraceAuditor::CheckChain(size_t ring, const std::vector<TraceEvent>& chain,
                              bool complete) {
  // Value checks: every audited-pair verdict, complete chain or not (a
  // verdict event is self-sufficient: its generation stamp defines its
  // validity window). One chain can hold SEVERAL evaluations of the same
  // pair (a guarded server re-enters Authorize inside the traced call),
  // so guard-observed goals are tracked in stream order and CONSUMED by
  // the verdict that closes their evaluation — pairing verdict N with
  // evaluation M's guard check would compare disjoint windows.
  std::map<uint64_t, nal::FormulaId> observed_goals;
  for (size_t i = 0; i < chain.size(); ++i) {
    const TraceEvent& e = chain[i];
    if (e.stage == TraceStage::kGuardCheck && e.generation != 0) {
      // The kGuardCheck generation word carries the goal id the guard saw.
      observed_goals[PairKey(e.op, e.obj)] = e.generation;
      continue;
    }
    if (e.stage != TraceStage::kVerdict || !audited_.contains(PairKey(e.op, e.obj))) {
      continue;
    }
    uint64_t probe_gen = 0;
    for (size_t j = i; j-- > 0;) {  // Nearest preceding probe of this tuple.
      const TraceEvent& p = chain[j];
      if (p.stage == TraceStage::kCacheProbe && p.subject == e.subject && p.op == e.op &&
          p.obj == e.obj) {
        probe_gen = p.generation;
        break;
      }
    }
    nal::FormulaId observed = 0;
    auto goal_it = observed_goals.find(PairKey(e.op, e.obj));
    if (goal_it != observed_goals.end()) {
      observed = goal_it->second;
      observed_goals.erase(goal_it);
    }
    CheckVerdict(e, probe_gen, observed, /*defer_allowed=*/true);
  }
  if (!complete) {
    return;  // Structural checks need the whole chain.
  }
  // Guard-present: an audited pair always carries a goal, so an engine
  // miss on it must have reached a guard (inline check or designated
  // upcall) before its verdict.
  if (config_.require_guard_on_miss) {
    for (const TraceEvent& e : chain) {
      if (e.stage != TraceStage::kEngineMiss || !audited_.contains(PairKey(e.op, e.obj))) {
        continue;
      }
      bool guarded = std::any_of(chain.begin(), chain.end(), [&](const TraceEvent& g) {
        return (g.stage == TraceStage::kGuardCheck || g.stage == TraceStage::kGuardUpcall) &&
               g.op == e.op && g.obj == e.obj;
      });
      if (!guarded) {
        AddViolation(&report_.guard_bypass_violations, "guard_bypass",
                     "ring " + std::to_string(ring) + " trace " +
                         std::to_string(e.trace_id) + " " + DescribeTuple(e) +
                         ": engine miss with no guard-check stage in chain");
      }
    }
  }
  // Interceptor traversal: a call through a port registered as interposed
  // must carry the interposed flag (set only when the kernel actually ran
  // the interceptor stack), and — unless the CALL direction already denied
  // it, in which case no reply ever existed — the chain must contain the
  // matching kReplyInterpose stage: the kernel emits it only after the
  // reply-direction chain ran, so a completed interposed call without one
  // returned a reply the monitors never saw.
  for (const TraceEvent& e : chain) {
    if (e.stage != TraceStage::kCall || !interposed_ports_.contains(e.aux)) {
      continue;
    }
    if ((e.flags & kernel::kTraceFlagInterposed) == 0) {
      AddViolation(&report_.interposition_violations, "interposition",
                   "ring " + std::to_string(ring) + " trace " + std::to_string(e.trace_id) +
                       " call to interposed port " + std::to_string(e.aux) +
                       " did not traverse its interceptor");
      continue;
    }
    if ((e.flags & kernel::kTraceFlagDenied) != 0) {
      continue;  // Blocked on the call direction: no reply to interpose.
    }
    bool reply_interposed =
        std::any_of(chain.begin(), chain.end(), [&](const TraceEvent& r) {
          return r.stage == TraceStage::kReplyInterpose && r.aux == e.aux;
        });
    if (!reply_interposed) {
      AddViolation(&report_.interposition_violations, "interposition",
                   "ring " + std::to_string(ring) + " trace " + std::to_string(e.trace_id) +
                       " reply from interposed port " + std::to_string(e.aux) +
                       " bypassed the reply-direction interceptor chain");
    }
  }
}

void TraceAuditor::CheckVerdict(const TraceEvent& verdict, uint64_t probe_gen,
                                nal::FormulaId observed_goal, bool defer_allowed) {
  const AuditedPair& pair = audited_.at(PairKey(verdict.op, verdict.obj));
  const Timeline& timeline = timelines_[pair.subregion];
  size_t shard = ShardOf(verdict.subject);
  uint64_t max_logged = shard < timeline.max_gens.size() ? timeline.max_gens[shard] : 0;
  uint64_t verdict_gen = verdict.generation != 0 ? verdict.generation : probe_gen;
  // The pair's first change stamped past the window (the ONE state an
  // in-flight install may expose early) is conclusive only once a LATER
  // pair change is ingested — or at Finish, when the log is complete and
  // absence means no install was in flight.
  bool successor_known =
      !pair.changes.empty() &&
      (shard < pair.changes.back().gens.size() ? pair.changes.back().gens[shard] : 0) >
          verdict_gen;
  if (defer_allowed && (verdict_gen > max_logged || !successor_known)) {
    // The mutation carrying this generation — or the successor install
    // the evaluation may have glimpsed — may simply not be drained yet;
    // retry once everything is ingested.
    pending_.push_back(PendingVerdict{verdict, probe_gen, observed_goal});
    return;
  }
  ++report_.verdicts_checked;
  if (verdict_gen > max_logged && config_.complete_mutation_log) {
    AddViolation(&report_.stale_generation_violations, "stale_generation",
                 DescribeTuple(verdict) + " verdict gen=" + std::to_string(verdict_gen) +
                     " exceeds every logged mutation (max " +
                     std::to_string(max_logged) + "): generation from the future");
    return;
  }
  bool holder = pair.holders.contains(verdict.subject);
  bool allowed = verdict.verdict == kernel::kTraceVerdictAllow;
  std::vector<nal::FormulaId> admissible;
  if (verdict_gen == 0) {
    // No generation info (cache disabled / untraced probe): the weakest
    // sound window is every state the pair ever held.
    admissible.push_back(pair.initial_goal_id);
    for (const PairChange& change : pair.changes) {
      admissible.push_back(change.goal_id);
    }
  } else {
    // A missing probe event (truncated chain) passes probe_gen = 0: the
    // window floor degrades to the initial state, admitting every state
    // up to the successor — weaker, but sound. Substituting verdict_gen
    // would NOT be: the guard read precedes the verdict's generation
    // re-read, so it may legitimately have seen a state older than the
    // last change to land before the re-read.
    admissible = AdmissibleGoals(pair, shard, probe_gen, verdict_gen);
  }
  bool verdict_admissible = false;
  for (nal::FormulaId goal : admissible) {
    bool expected = holder && goal == pair.allow_goal_id;
    if (expected == allowed) {
      verdict_admissible = true;
      break;
    }
  }
  if (!verdict_admissible) {
    AddViolation(&report_.serializability_violations, "serializability",
                 DescribeTuple(verdict) + " verdict=" + (allowed ? "allow" : "deny") +
                     " gens=[" + std::to_string(probe_gen) + "," +
                     std::to_string(verdict_gen) + "] holder=" +
                     (holder ? "yes" : "no") + ": no serial replay of the logged " +
                     "mutations produces this verdict in its window");
  }
  if (std::getenv("NEXUS_AUDITOR_DEBUG") != nullptr) {
    bool bad_verdict = !verdict_admissible;
    bool bad_goal = observed_goal != 0 &&
                    std::find(admissible.begin(), admissible.end(), observed_goal) ==
                        admissible.end();
    if (bad_verdict || bad_goal) {
      fprintf(stderr, "DEBUG %s shard=%zu window=[%llu,%llu] observed=%llu changes:",
              DescribeTuple(verdict).c_str(), shard,
              static_cast<unsigned long long>(probe_gen),
              static_cast<unsigned long long>(verdict_gen),
              static_cast<unsigned long long>(observed_goal));
      for (const PairChange& c : pair.changes) {
        fprintf(stderr, " %llu:%llu",
                static_cast<unsigned long long>(shard < c.gens.size() ? c.gens[shard] : 0),
                static_cast<unsigned long long>(c.goal_id));
      }
      fprintf(stderr, "\n");
    }
  }
  if (observed_goal != 0 &&
      std::find(admissible.begin(), admissible.end(), observed_goal) ==
          admissible.end()) {
    AddViolation(&report_.serializability_violations, "serializability",
                 DescribeTuple(verdict) + " guard observed goal id " +
                     std::to_string(observed_goal) +
                     " outside the admissible window [" + std::to_string(probe_gen) +
                     "," + std::to_string(verdict_gen) + "]");
  }
}

std::vector<nal::FormulaId> TraceAuditor::AdmissibleGoals(const AuditedPair& pair,
                                                          size_t shard, uint64_t probe_gen,
                                                          uint64_t verdict_gen) const {
  if (probe_gen > verdict_gen) {
    probe_gen = verdict_gen;  // Defensive; flagged separately as stale.
  }
  auto stamp = [&](const PairChange& c) -> uint64_t {
    return shard < c.gens.size() ? c.gens[shard] : 0;
  };
  // First change bumped AFTER the probe's generation read. Stamps are
  // exact post-bump counter values read under the shard lock, so stamp <=
  // probe_gen means the bump — and the goal install that precedes it in
  // the mutator's program order — happened-before the probe: the engine's
  // later goal read cannot see an older state. The floor of the window is
  // therefore exactly the last change with stamp <= probe_gen.
  auto begin = std::upper_bound(
      pair.changes.begin(), pair.changes.end(), probe_gen,
      [&](uint64_t g, const PairChange& c) { return g < stamp(c); });
  std::vector<nal::FormulaId> out;
  out.push_back(begin == pair.changes.begin() ? pair.initial_goal_id
                                              : std::prev(begin)->goal_id);
  // Every change stamped inside (probe_gen, verdict_gen], plus exactly ONE
  // successor past the window: a goal installs BEFORE its bump lands, and
  // per-pair installs are serialized, so at most one not-yet-stamped state
  // can have been observable when the verdict re-read its generation.
  for (auto it = begin; it != pair.changes.end(); ++it) {
    out.push_back(it->goal_id);
    if (stamp(*it) > verdict_gen) {
      break;
    }
  }
  // Dedup (tiny vectors).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void TraceAuditor::IngestMutations(std::span<const kernel::MutationRecord> records) {
  for (const kernel::MutationRecord& r : records) {
    ++report_.mutations_ingested;
    if (r.generations.empty()) {
      continue;  // kSay: append-only label, no invalidation axis.
    }
    Timeline& timeline = timelines_[SubregionOf(r.op, r.obj)];
    if (timeline.max_gens.size() < r.generations.size()) {
      timeline.max_gens.resize(r.generations.size(), 0);
    }
    for (size_t i = 0; i < r.generations.size(); ++i) {
      timeline.max_gens[i] = std::max(timeline.max_gens[i], r.generations[i]);
    }
    if (r.kind == kernel::MutationKind::kRemoteInvalidate) {
      // Not a goal change here — the goal changed on the ORIGIN node.
      // Retain the exact per-shard stamps so the matching flight-recorder
      // event (joined by pair + epoch in r.detail) can raise per-shard
      // ring high-waters in CheckRingMonotonicity.
      if (remote_inval_gens_.size() >= kMaxRemoteInvalJoin) {
        remote_inval_gens_.erase(remote_inval_gens_.begin());
      }
      remote_inval_gens_[std::make_pair(PairKey(r.op, r.obj), r.detail)] =
          r.generations;
      continue;
    }
    bool goal_change = r.kind == kernel::MutationKind::kSetGoal ||
                       r.kind == kernel::MutationKind::kClearGoal;
    if (!goal_change) {
      continue;  // Proof mutations only raise the high-water mark.
    }
    auto it = audited_.find(PairKey(r.op, r.obj));
    if (it == audited_.end()) {
      continue;
    }
    PairChange change;
    change.goal_id = r.kind == kernel::MutationKind::kSetGoal ? r.detail : 0;
    change.gens = r.generations;
    it->second.changes.push_back(std::move(change));
  }
}

void TraceAuditor::Harvest() {
  std::vector<kernel::FlightRecorder::DrainedSegment> segments;
  kernel::FlightRecorder::DrainStats stats =
      kernel::FlightRecorder::Global().Drain(&event_cursor_, &segments);
  NoteDropped(stats.dropped);
  // Mutations first: a verdict drained in this batch may reference a
  // generation whose mutation was appended just before the event drain.
  std::vector<kernel::MutationRecord> mutations;
  kernel::MutationLog::Global().DrainFrom(&mutation_cursor_, &mutations);
  IngestMutations(mutations);
  for (const auto& segment : segments) {
    IngestSegment(segment.ring, segment.begin_seq, segment.events,
                  segment.lossless_start);
  }
}

TraceAuditor::Report TraceAuditor::Finish() {
  if (finished_) {
    return report_;
  }
  finished_ = true;
  for (auto& [ring, state] : ring_states_) {
    // The buffered tail might continue past the last harvest: value-check
    // it but never structurally.
    FinalizeRun(ring, &state, /*complete_tail=*/false);
  }
  std::vector<PendingVerdict> pending = std::move(pending_);
  pending_.clear();
  for (const PendingVerdict& p : pending) {
    CheckVerdict(p.verdict, p.probe_gen, p.observed_goal, /*defer_allowed=*/false);
  }
  return report_;
}

}  // namespace nexus::harness
