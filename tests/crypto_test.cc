#include <gtest/gtest.h>

#include <set>

#include "crypto/aes.h"
#include "crypto/bignum.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"
#include "util/rng.h"

namespace nexus::crypto {
namespace {

std::string HexOf(ByteView v) { return HexEncode(v); }

template <size_t N>
std::string HexOf(const std::array<uint8_t, N>& a) {
  return HexEncode(ByteView(a.data(), a.size()));
}

// ---------------------------------------------------------------- SHA-1

TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(HexOf(Sha1::Hash(ToBytes(""))), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(HexOf(Sha1::Hash(ToBytes("abc"))), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, LongerVector) {
  EXPECT_EQ(HexOf(Sha1::Hash(ToBytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  Sha1 hasher;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    hasher.Update(chunk);
  }
  EXPECT_EQ(HexOf(hasher.Finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  Bytes data = ToBytes("the quick brown fox jumps over the lazy dog");
  Sha1 hasher;
  for (size_t i = 0; i < data.size(); ++i) {
    hasher.Update(ByteView(&data[i], 1));
  }
  EXPECT_EQ(HexOf(hasher.Finish()), HexOf(Sha1::Hash(data)));
}

// -------------------------------------------------------------- SHA-256

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HexOf(Sha256::Hash(ToBytes(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HexOf(Sha256::Hash(ToBytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(
      HexOf(Sha256::Hash(ToBytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  Bytes chunk(10000, 'a');
  for (int i = 0; i < 100; ++i) {
    hasher.Update(chunk);
  }
  EXPECT_EQ(HexOf(hasher.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Rng rng(5);
  Bytes data = rng.RandomBytes(1000);
  Sha256 hasher;
  size_t offset = 0;
  size_t sizes[] = {1, 63, 64, 65, 100, 707};
  for (size_t sz : sizes) {
    size_t take = std::min(sz, data.size() - offset);
    hasher.Update(ByteView(data.data() + offset, take));
    offset += take;
  }
  EXPECT_EQ(HexOf(hasher.Finish()), HexOf(Sha256::Hash(data)));
}

TEST(Sha256Test, PaddingBoundaries) {
  // Lengths straddling the 55/56/63/64 padding boundaries must all differ.
  std::set<std::string> digests;
  for (size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u}) {
    digests.insert(HexOf(Sha256::Hash(Bytes(len, 'x'))));
  }
  EXPECT_EQ(digests.size(), 7u);
}

// ----------------------------------------------------------------- HMAC

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(HexOf(HmacSha256(key, ToBytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(HexOf(HmacSha256(ToBytes("Jefe"), ToBytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashed) {
  Bytes key(131, 0xaa);
  EXPECT_EQ(HexOf(HmacSha256(key, ToBytes("Test Using Larger Than Block-Size Key - Hash Key "
                                          "First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, DifferentKeysDiffer) {
  EXPECT_NE(HexOf(HmacSha256(ToBytes("k1"), ToBytes("m"))),
            HexOf(HmacSha256(ToBytes("k2"), ToBytes("m"))));
}

// ------------------------------------------------------------------ AES

TEST(AesTest, Fips197Vector) {
  // FIPS-197 appendix B.
  AesKey key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  uint8_t block[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                       0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  Aes128 aes(key);
  aes.EncryptBlock(block);
  EXPECT_EQ(HexOf(ByteView(block, 16)), "3925841d02dc09fbdc118597196a0b32");
}

TEST(AesTest, Sp800_38aCtrKeystreamBlock) {
  // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, first block, realized through
  // a raw block encryption of the initial counter.
  AesKey key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  uint8_t counter[16] = {0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7,
                         0xf8, 0xf9, 0xfa, 0xfb, 0xfc, 0xfd, 0xfe, 0xff};
  Aes128 aes(key);
  aes.EncryptBlock(counter);
  EXPECT_EQ(HexOf(ByteView(counter, 16)), "ec8cdf7398607cb0f2d21675ea9ea1e4");
}

TEST(AesCtrTest, RoundTrip) {
  AesKey key = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  AesCtr ctr(key, /*nonce=*/99);
  Bytes plain = ToBytes("counter mode allows independent region encryption");
  Bytes cipher = ctr.Crypt(0, plain);
  EXPECT_NE(cipher, plain);
  Bytes restored = ctr.Crypt(0, cipher);
  EXPECT_EQ(restored, plain);
}

TEST(AesCtrTest, RegionIndependence) {
  // Decrypting a middle region alone must match the same bytes from a
  // whole-buffer decryption: the paper relies on this for demand paging.
  AesKey key = {9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
  AesCtr ctr(key, 7);
  Rng rng(13);
  Bytes plain = rng.RandomBytes(256);
  Bytes cipher = ctr.Crypt(0, plain);

  Bytes middle(cipher.begin() + 100, cipher.begin() + 150);
  Bytes restored_middle = ctr.Crypt(100, middle);
  Bytes expected(plain.begin() + 100, plain.begin() + 150);
  EXPECT_EQ(restored_middle, expected);
}

TEST(AesCtrTest, DifferentNoncesDiffer) {
  AesKey key = {1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  Bytes plain(64, 0);
  EXPECT_NE(AesCtr(key, 1).Crypt(0, plain), AesCtr(key, 2).Crypt(0, plain));
}

TEST(AesCtrTest, UnalignedOffsets) {
  AesKey key = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
  AesCtr ctr(key, 42);
  Rng rng(17);
  Bytes plain = rng.RandomBytes(100);
  Bytes cipher = ctr.Crypt(33, plain);  // Starts mid-block.
  EXPECT_EQ(ctr.Crypt(33, cipher), plain);
}

// --------------------------------------------------------------- BigNum

TEST(BigNumTest, ZeroProperties) {
  BigNum zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.BitLength(), 0);
  EXPECT_FALSE(zero.IsOdd());
}

TEST(BigNumTest, FromU64) {
  BigNum n(0x123456789abcdef0ULL);
  EXPECT_EQ(n.ToHex(), "123456789abcdef0");
  EXPECT_EQ(n.BitLength(), 61);
}

TEST(BigNumTest, BytesRoundTrip) {
  Bytes raw = {0x01, 0x00, 0xff, 0xee, 0xdd};
  BigNum n = BigNum::FromBytes(raw);
  EXPECT_EQ(n.ToBytes(), raw);
}

TEST(BigNumTest, AddCarriesAcrossLimbs) {
  BigNum a(0xffffffffffffffffULL);
  BigNum sum = BigNum::Add(a, BigNum(1));
  EXPECT_EQ(sum.ToHex(), "010000000000000000");
}

TEST(BigNumTest, SubBorrowsAcrossLimbs) {
  BigNum a = BigNum::Add(BigNum(0xffffffffffffffffULL), BigNum(1));
  BigNum diff = BigNum::Sub(a, BigNum(1));
  EXPECT_EQ(diff.ToHex(), "ffffffffffffffff");
}

TEST(BigNumTest, MulMatchesKnownProduct) {
  BigNum a(0xfedcba98ULL);
  BigNum b(0x12345678ULL);
  EXPECT_EQ(BigNum::Mul(a, b).ToHex(), "121fa00a35068740");
}

TEST(BigNumTest, DivModSmallDivisor) {
  BigNum q, r;
  BigNum::DivMod(BigNum(1000000007ULL), BigNum(97), q, r);
  EXPECT_EQ(q.ToHex(), BigNum(10309278ULL).ToHex());
  EXPECT_EQ(r.ToHex(), BigNum(41).ToHex());
}

TEST(BigNumTest, DivModPropertyRandom) {
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    BigNum a = BigNum::RandomWithBits(rng, 1 + static_cast<int>(rng.NextBelow(200)));
    BigNum b = BigNum::RandomWithBits(rng, 1 + static_cast<int>(rng.NextBelow(120)));
    BigNum q, r;
    BigNum::DivMod(a, b, q, r);
    EXPECT_LT(BigNum::Compare(r, b), 0);
    BigNum recombined = BigNum::Add(BigNum::Mul(q, b), r);
    EXPECT_EQ(BigNum::Compare(recombined, a), 0) << "iteration " << i;
  }
}

TEST(BigNumTest, ShiftRoundTrip) {
  Rng rng(31);
  BigNum a = BigNum::RandomWithBits(rng, 100);
  EXPECT_EQ(BigNum::Compare(a.ShiftLeft(37).ShiftRight(37), a), 0);
}

TEST(BigNumTest, ModExpSmallNumbers) {
  // 5^3 mod 13 = 125 mod 13 = 8.
  EXPECT_EQ(BigNum::Compare(BigNum::ModExp(BigNum(5), BigNum(3), BigNum(13)), BigNum(8)), 0);
}

TEST(BigNumTest, ModExpFermat) {
  // Fermat's little theorem: a^(p-1) ≡ 1 (mod p) for prime p.
  BigNum p(1000000007ULL);
  for (uint64_t a : {2ULL, 3ULL, 65537ULL, 999999999ULL}) {
    EXPECT_EQ(
        BigNum::Compare(BigNum::ModExp(BigNum(a), BigNum(1000000006ULL), p), BigNum(1)), 0);
  }
}

TEST(BigNumTest, ModInverseProperty) {
  Rng rng(41);
  BigNum modulus(1000000007ULL);
  for (int i = 0; i < 50; ++i) {
    BigNum a(1 + rng.NextBelow(1000000006ULL));
    BigNum inv = BigNum::ModInverse(a, modulus);
    ASSERT_FALSE(inv.IsZero());
    EXPECT_EQ(BigNum::Compare(BigNum::ModMul(a, inv, modulus), BigNum(1)), 0);
  }
}

TEST(BigNumTest, ModInverseOfNonCoprimeIsZero) {
  EXPECT_TRUE(BigNum::ModInverse(BigNum(6), BigNum(9)).IsZero());
}

TEST(BigNumTest, GcdKnownValues) {
  EXPECT_EQ(BigNum::Compare(BigNum::Gcd(BigNum(48), BigNum(36)), BigNum(12)), 0);
  EXPECT_EQ(BigNum::Compare(BigNum::Gcd(BigNum(17), BigNum(5)), BigNum(1)), 0);
}

TEST(BigNumTest, ModU32MatchesDivMod) {
  Rng rng(43);
  for (int i = 0; i < 50; ++i) {
    BigNum a = BigNum::RandomWithBits(rng, 128);
    uint32_t d = static_cast<uint32_t>(1 + rng.NextBelow(1000000));
    BigNum q, r;
    BigNum::DivMod(a, BigNum(d), q, r);
    BigNum expected = r;
    EXPECT_EQ(BigNum::Compare(BigNum(a.ModU32(d)), expected), 0);
  }
}

TEST(PrimalityTest, KnownPrimes) {
  Rng rng(47);
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 65537ULL, 1000000007ULL, 2147483647ULL}) {
    EXPECT_TRUE(IsProbablePrime(BigNum(p), rng)) << p;
  }
}

TEST(PrimalityTest, KnownComposites) {
  Rng rng(53);
  // Includes Carmichael numbers 561 and 41041.
  for (uint64_t c : {1ULL, 4ULL, 561ULL, 41041ULL, 1000000008ULL, 65539ULL * 65543ULL}) {
    EXPECT_FALSE(IsProbablePrime(BigNum(c), rng)) << c;
  }
}

TEST(PrimalityTest, GeneratedPrimeHasExactBits) {
  Rng rng(59);
  BigNum p = GeneratePrime(rng, 96);
  EXPECT_EQ(p.BitLength(), 96);
  EXPECT_TRUE(IsProbablePrime(p, rng));
}

// ------------------------------------------------------------------ RSA

class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Key generation is the slow part; share one pair across tests.
    Rng rng(61);
    key_pair_ = new RsaKeyPair(GenerateRsaKeyPair(rng, 512));
  }
  static void TearDownTestSuite() {
    delete key_pair_;
    key_pair_ = nullptr;
  }

  static RsaKeyPair* key_pair_;
};

RsaKeyPair* RsaTest::key_pair_ = nullptr;

TEST_F(RsaTest, SignVerifyRoundTrip) {
  Bytes message = ToBytes("TPM says kernel says labelstore says process says S");
  Bytes sig = RsaSign(key_pair_->private_key, message);
  EXPECT_TRUE(RsaVerify(key_pair_->public_key, message, sig));
}

TEST_F(RsaTest, TamperedMessageFails) {
  Bytes message = ToBytes("authentic statement");
  Bytes sig = RsaSign(key_pair_->private_key, message);
  EXPECT_FALSE(RsaVerify(key_pair_->public_key, ToBytes("authentic statemenT"), sig));
}

TEST_F(RsaTest, TamperedSignatureFails) {
  Bytes message = ToBytes("authentic statement");
  Bytes sig = RsaSign(key_pair_->private_key, message);
  sig[sig.size() / 2] ^= 0x01;
  EXPECT_FALSE(RsaVerify(key_pair_->public_key, message, sig));
}

TEST_F(RsaTest, WrongLengthSignatureFails) {
  Bytes message = ToBytes("m");
  Bytes sig = RsaSign(key_pair_->private_key, message);
  sig.pop_back();
  EXPECT_FALSE(RsaVerify(key_pair_->public_key, message, sig));
}

TEST_F(RsaTest, WrongKeyFails) {
  Rng rng(67);
  RsaKeyPair other = GenerateRsaKeyPair(rng, 512);
  Bytes message = ToBytes("m");
  Bytes sig = RsaSign(key_pair_->private_key, message);
  EXPECT_FALSE(RsaVerify(other.public_key, message, sig));
}

TEST_F(RsaTest, EncryptDecryptRoundTrip) {
  Rng rng(62);
  Bytes share = rng.RandomBytes(32);
  Result<Bytes> ciphertext = RsaEncrypt(key_pair_->public_key, share, rng);
  ASSERT_TRUE(ciphertext.ok()) << ciphertext.status().ToString();
  // Randomized padding: the ciphertext hides the plaintext even across
  // identical messages.
  Result<Bytes> again = RsaEncrypt(key_pair_->public_key, share, rng);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*ciphertext == *again);
  Result<Bytes> decrypted = RsaDecrypt(key_pair_->private_key, *ciphertext);
  ASSERT_TRUE(decrypted.ok()) << decrypted.status().ToString();
  EXPECT_EQ(*decrypted, share);
}

TEST_F(RsaTest, EncryptRejectsOversizedPlaintext) {
  Rng rng(63);
  Bytes too_long = rng.RandomBytes(64);  // 512-bit modulus: max is 64 - 11.
  EXPECT_FALSE(RsaEncrypt(key_pair_->public_key, too_long, rng).ok());
}

TEST_F(RsaTest, DecryptRejectsTamperedCiphertext) {
  Rng rng(64);
  Bytes share = rng.RandomBytes(32);
  Bytes ciphertext = *RsaEncrypt(key_pair_->public_key, share, rng);
  ciphertext[0] ^= 1;
  Result<Bytes> decrypted = RsaDecrypt(key_pair_->private_key, ciphertext);
  // Either padding rejects it or the plaintext is garbage; it must never
  // round-trip to the original share.
  if (decrypted.ok()) {
    EXPECT_FALSE(*decrypted == share);
  }
  EXPECT_FALSE(RsaDecrypt(key_pair_->private_key, ToBytes("short")).ok());
}

TEST_F(RsaTest, PublicKeySerializationRoundTrip) {
  Bytes serialized = key_pair_->public_key.Serialize();
  Result<RsaPublicKey> restored = RsaPublicKey::Deserialize(serialized);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*restored == key_pair_->public_key);
  EXPECT_EQ(restored->Fingerprint(), key_pair_->public_key.Fingerprint());
}

TEST_F(RsaTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(RsaPublicKey::Deserialize(ToBytes("not a key")).ok());
}

TEST_F(RsaTest, FingerprintIsStableAndUnique) {
  Rng rng(71);
  RsaKeyPair other = GenerateRsaKeyPair(rng, 512);
  EXPECT_EQ(key_pair_->public_key.Fingerprint(), key_pair_->public_key.Fingerprint());
  EXPECT_NE(key_pair_->public_key.Fingerprint(), other.public_key.Fingerprint());
}

}  // namespace
}  // namespace nexus::crypto
