// The NAL proof checker.
//
// Checking is decidable and cheap (the paper's guard executes proofs of
// fewer than 15 steps in under a millisecond); this module performs no proof
// search. The checker walks the proof tree once, computing each node's
// conclusion and validating the rule application, then matches the final
// conclusion against the goal formula (instantiating $-variables).
#ifndef NEXUS_NAL_CHECKER_H_
#define NEXUS_NAL_CHECKER_H_

#include <functional>
#include <vector>

#include "nal/formula.h"
#include "nal/proof.h"
#include "util/status.h"

namespace nexus::nal {

// Answers whether a live authority currently vouches for a formula. The
// answer is used once and never cached or stored (§2.7).
using AuthorityCallback = std::function<bool(const Formula&)>;

struct CheckResult {
  Status status;          // OK iff the proof is valid and discharges the goal
  Formula conclusion;     // what the proof actually proves (if valid)
  bool cacheable = true;  // false if any authority query was consulted
  int rules_applied = 0;  // proof size, for accounting
  Bindings bindings;      // goal-variable instantiation on success
  // True if the failure was a premise absent from the credential set. Such
  // denials must not be cached: the subject may acquire the credential
  // later without updating the proof (Fig. 4's "no cred" case stays
  // expensive even with the decision cache on).
  bool missing_credential = false;
};

// Verifies that `p` is a valid derivation from `credentials` (plus authority
// answers) and that its conclusion instantiates `goal`.
CheckResult CheckProof(const Proof& p, const Formula& goal,
                       const std::vector<Formula>& credentials,
                       const AuthorityCallback& authority = nullptr);

// Verifies derivation validity only, returning the conclusion.
CheckResult ConcludeProof(const Proof& p, const std::vector<Formula>& credentials,
                          const AuthorityCallback& authority = nullptr);

// Conservative static test: a proof is cacheable iff it contains no
// authority leaves (§2.8 — "NAL's structure makes it easy to mechanically
// and conservatively determine those proofs that do not have references to
// dynamic system state").
bool IsStaticallyCacheable(const Proof& p);

}  // namespace nexus::nal

#endif  // NEXUS_NAL_CHECKER_H_
