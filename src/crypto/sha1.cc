#include "crypto/sha1.h"

#include <cstring>

namespace nexus::crypto {

namespace {

uint32_t Rotl(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

}  // namespace

Sha1::Sha1() {
  h_[0] = 0x67452301;
  h_[1] = 0xefcdab89;
  h_[2] = 0x98badcfe;
  h_[3] = 0x10325476;
  h_[4] = 0xc3d2e1f0;
}

void Sha1::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f;
    uint32_t k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5a827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdc;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6;
    }
    uint32_t temp = Rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl(b, 30);
    b = a;
    a = temp;
  }

  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::Update(ByteView data) {
  total_bits_ += static_cast<uint64_t>(data.size()) * 8;
  if (data.empty()) {
    return;  // An empty view may carry a null data(); memcpy forbids it.
  }
  size_t offset = 0;
  if (buffer_len_ > 0) {
    size_t take = std::min(data.size(), sizeof(buffer_) - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == sizeof(buffer_)) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    ProcessBlock(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Sha1Digest Sha1::Finish() {
  uint8_t pad[72] = {0x80};
  size_t pad_len = (buffer_len_ < 56) ? (56 - buffer_len_) : (120 - buffer_len_);
  uint64_t bits = total_bits_;
  Update(ByteView(pad, pad_len));
  uint8_t len_bytes[8];
  for (int i = 7; i >= 0; --i) {
    len_bytes[i] = static_cast<uint8_t>(bits & 0xff);
    bits >>= 8;
  }
  Update(ByteView(len_bytes, 8));

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest[4 * i] = static_cast<uint8_t>(h_[i] >> 24);
    digest[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
    digest[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
    digest[4 * i + 3] = static_cast<uint8_t>(h_[i]);
  }
  return digest;
}

Sha1Digest Sha1::Hash(ByteView data) {
  Sha1 hasher;
  hasher.Update(data);
  return hasher.Finish();
}

}  // namespace nexus::crypto
