#include "net/mesh/gossip.h"

#include "core/certificate.h"
#include "crypto/sha256.h"

namespace nexus::net::mesh {

GossipService::GossipService(NetNode* node, MeshRegistry* registry,
                             kernel::ProcessId import_pid)
    : node_(node), registry_(registry), import_pid_(import_pid) {
  node_->RegisterService(std::string(kServiceName), this);
  // Seed the replicated state with our own identity; every push therefore
  // carries it, which is how a freshly-joined node becomes mesh-wide known.
  registry_->ImportPeer(
      PeerRecord{node_->id(), node_->nexus().tpm().endorsement_public_key().Serialize()});
}

Bytes GossipService::SerializeState() const {
  Bytes out;
  std::vector<PeerRecord> peers = registry_->Peers();
  AppendU32(out, static_cast<uint32_t>(peers.size()));
  for (const PeerRecord& record : peers) {
    AppendLengthPrefixed(out, record.SerializeRecord());
  }
  std::vector<Bytes> certs = registry_->Certificates();
  AppendU32(out, static_cast<uint32_t>(certs.size()));
  for (const Bytes& cert : certs) {
    AppendLengthPrefixed(out, cert);
  }
  return out;
}

bool GossipService::ApplyPeerRecord(const PeerRecord& record) {
  Result<crypto::RsaPublicKey> ek = crypto::RsaPublicKey::Deserialize(record.ek);
  if (!ek.ok() || record.name.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return false;
  }
  // An out-of-band anchor for this name always wins: a gossiped record that
  // contradicts it is rejected BEFORE touching the registry, so registry
  // and kernel trust set stay consistent.
  Result<crypto::RsaPublicKey> known = node_->nexus().PeerEk(record.name);
  if (known.ok() && !(*known == *ek)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return false;
  }
  switch (registry_->ImportPeer(record)) {
    case MeshRegistry::Import::kNew:
      break;
    case MeshRegistry::Import::kDuplicate: {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.duplicates;
      return false;
    }
    case MeshRegistry::Import::kConflict: {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected;
      return false;
    }
  }
  // Our own record needs no self-trust; everyone else becomes a trust
  // anchor, which is what lets certificates chained to them verify and
  // lets us attest channels to not-directly-seeded nodes.
  if (record.name != node_->id()) {
    (void)node_->nexus().RegisterPeer(record.name, *ek);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.peers_imported;
  return true;
}

bool GossipService::ApplyCertificate(const Bytes& cert_bytes) {
  std::string digest = crypto::Sha256Hex(cert_bytes);
  if (registry_->HasCertificate(digest)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.duplicates;
    return false;
  }
  Result<core::Certificate> cert = core::Certificate::Deserialize(cert_bytes);
  if (!cert.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return false;
  }
  if (cert->ek_public == node_->nexus().tpm().endorsement_public_key()) {
    // A certificate rooted in OUR OWN EK (typically one we externalized and
    // published). We do not register ourselves as a peer, so it cannot go
    // through ImportPeerCertificate — but it must still verify before the
    // registry accepts it, or a forgery claiming our EK would enter our
    // replica (diverging us from honest nodes and re-gossiping garbage).
    if (!core::VerifyCertificate(*cert, cert->ek_public).ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected;
      return false;
    }
    registry_->ImportCertificate(cert_bytes);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.certs_imported;
    return true;
  }
  if (!node_->nexus().IsTrustedPeerEk(cert->ek_public)) {
    // The anchoring peer record may simply not have arrived yet (gossip is
    // order-free); park the certificate and retry when new peers land.
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_certs_.try_emplace(digest, cert_bytes).second) {
      pending_order_.push_back(digest);
      ++stats_.pending_parked;
      while (pending_order_.size() > kMaxPendingCerts) {
        pending_certs_.erase(pending_order_.front());
        pending_order_.erase(pending_order_.begin());
      }
    }
    return false;
  }
  // Chain verification + labelstore import. A certificate that fails here
  // is cryptographically bad (tampered statement or signature): reject it
  // permanently — it never enters the registry, so we never re-gossip it.
  Result<core::LabelHandle> handle = node_->nexus().ImportPeerCertificate(import_pid_, *cert);
  if (!handle.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return false;
  }
  registry_->ImportCertificate(cert_bytes);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.certs_imported;
  return true;
}

size_t GossipService::RetryPendingLocked() {
  size_t imported = 0;
  // Collect first: ApplyCertificate takes mu_ itself, so release before
  // re-applying (the parked entry is erased up front; a still-unanchored
  // certificate simply parks again).
  std::vector<Bytes> retry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    retry.reserve(pending_certs_.size());
    for (const auto& [digest, bytes] : pending_certs_) {
      retry.push_back(bytes);
    }
    pending_certs_.clear();
    pending_order_.clear();
  }
  for (const Bytes& bytes : retry) {
    if (ApplyCertificate(bytes)) {
      ++imported;
    }
  }
  return imported;
}

size_t GossipService::ApplyState(ByteView payload, const NodeId& from) {
  ByteReader reader(payload);
  size_t fresh = 0;
  bool new_peers = false;
  Result<uint32_t> peer_count = reader.ReadU32();
  if (!peer_count.ok() || *peer_count > reader.remaining() / sizeof(uint32_t)) {
    return 0;  // Malformed header: drop the whole payload.
  }
  for (uint32_t i = 0; i < *peer_count; ++i) {
    Result<Bytes> blob = reader.ReadLengthPrefixed();
    if (!blob.ok()) {
      return fresh;
    }
    Result<PeerRecord> record = PeerRecord::DeserializeRecord(*blob);
    if (!record.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected;
      continue;
    }
    if (ApplyPeerRecord(*record)) {
      ++fresh;
      new_peers = true;
    }
  }
  Result<uint32_t> cert_count = reader.ReadU32();
  if (cert_count.ok() && *cert_count <= reader.remaining() / sizeof(uint32_t)) {
    for (uint32_t i = 0; i < *cert_count; ++i) {
      Result<Bytes> cert = reader.ReadLengthPrefixed();
      if (!cert.ok()) {
        break;
      }
      if (ApplyCertificate(*cert)) {
        ++fresh;
      }
    }
  }
  if (new_peers) {
    fresh += RetryPendingLocked();
  }
  if (fresh > 0) {
    // Flood-on-news: forward our (merged) state to everyone except the
    // sender. Send-only — we may be running under the pump lock.
    Flood(SerializeState(), from);
  }
  return fresh;
}

size_t GossipService::Flood(const Bytes& payload, const NodeId& skip) {
  size_t sent = 0;
  for (const PeerRecord& record : registry_->Peers()) {
    if (record.name == node_->id() || record.name == skip) {
      continue;
    }
    AttestedChannel* channel = node_->ChannelTo(record.name);
    if (channel == nullptr || !channel->established()) {
      continue;  // Anti-entropy rounds reach peers we cannot Connect here.
    }
    if (channel->SendSecure(std::string(kServiceName), payload).ok()) {
      ++sent;
    }
  }
  if (sent > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.floods_sent += sent;
  }
  return sent;
}

Result<Bytes> GossipService::Handle(AttestedChannel& channel, ByteView request) {
  ApplyState(request, channel.peer_node());
  return Bytes{};  // One-way deliveries (SendSecure) never send a reply.
}

Status GossipService::PushState(const NodeId& peer) {
  AttestedChannel* channel = node_->ChannelTo(peer);
  if (channel == nullptr || !channel->established()) {
    return Unavailable("no established channel to " + peer);
  }
  return channel->SendSecure(std::string(kServiceName), SerializeState());
}

void GossipService::AddSeed(const NodeId& peer) {
  if (peer == node_->id()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const NodeId& existing : seeds_) {
    if (existing == peer) {
      return;
    }
  }
  seeds_.push_back(peer);
}

size_t GossipService::AntiEntropyRound() {
  size_t sent = 0;
  Bytes state = SerializeState();
  // Registry peers plus pinned seeds: a seed whose record has not imported
  // yet (its join push was lost) must still be re-targeted every round.
  std::vector<NodeId> targets;
  for (const PeerRecord& record : registry_->Peers()) {
    targets.push_back(record.name);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const NodeId& seed : seeds_) {
      if (!registry_->HasPeer(seed)) {
        targets.push_back(seed);
      }
    }
  }
  for (const NodeId& target : targets) {
    if (target == node_->id()) {
      continue;
    }
    // Outside the pump we may handshake to newly-learned peers (their EK
    // became a trust anchor when their record imported).
    Result<AttestedChannel*> channel = node_->Connect(target);
    if (!channel.ok()) {
      continue;
    }
    if ((*channel)->SendSecure(std::string(kServiceName), state).ok()) {
      ++sent;
    }
  }
  if (sent > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.floods_sent += sent;
  }
  return sent;
}

Status GossipService::PublishCertificate(const Bytes& cert_bytes) {
  if (!ApplyCertificate(cert_bytes)) {
    // Duplicate publishes are fine (idempotent); anything else is a real
    // failure of the local import.
    if (!registry_->HasCertificate(crypto::Sha256Hex(cert_bytes))) {
      return InvalidArgument("certificate did not import locally");
    }
  }
  Flood(SerializeState(), /*skip=*/"");
  return OkStatus();
}

size_t GossipService::pending_certs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_certs_.size();
}

GossipService::Stats GossipService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace nexus::net::mesh
