// Workload-harness benchmark: sweep every application scenario under the
// million-subject load driver and emit BENCH_workload.json.
//
// Unlike the google-benchmark binaries, the driver measures itself (wall
// clock, per-op latency histograms) and doubles as an audit: every run
// drains the FlightRecorder and MutationLog into the TraceAuditor, and a
// serializability or structural violation fails the bench with a nonzero
// exit — CI's workload-soak job leans on that. The JSON artifact carries
// per-scenario throughput and p50/p99/p999 latency so load-path
// regressions stay visible PR-over-PR, same as the figure benches.
//
// Env overrides (the CI smoke runner passes --benchmark_* flags, which
// are ignored; positional args are not used):
//   NEXUS_WORKLOAD_OUT       output path (default BENCH_workload.json)
//   NEXUS_WORKLOAD_CALLS     logical calls per scenario (default 50000)
//   NEXUS_WORKLOAD_THREADS   worker threads (default 4)
//   NEXUS_WORKLOAD_SUBJECTS  simulated subject population (default 1M)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "apps/scenario_adapters.h"
#include "harness/workload.h"
#include "util/metrics.h"

namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

}  // namespace

int main() {
  const char* out_env = std::getenv("NEXUS_WORKLOAD_OUT");
  const std::string out_path =
      (out_env != nullptr && *out_env != '\0') ? out_env : "BENCH_workload.json";

  nexus::harness::WorkloadConfig base;
  base.logical_calls = EnvOr("NEXUS_WORKLOAD_CALLS", 50'000);
  base.threads = static_cast<size_t>(EnvOr("NEXUS_WORKLOAD_THREADS", 4));
  base.subjects = EnvOr("NEXUS_WORKLOAD_SUBJECTS", 1'000'000);

  std::vector<std::string> reports;
  bool clean = true;
  for (std::string_view name : nexus::apps::ScenarioNames()) {
    nexus::harness::WorkloadConfig config = base;
    config.scenario = std::string(name);
    nexus::harness::WorkloadDriver driver(config);
    nexus::Result<nexus::harness::WorkloadReport> report = driver.Run();
    if (!report.ok()) {
      std::fprintf(stderr, "FAIL scenario %s: %s\n", config.scenario.c_str(),
                   report.status().message().c_str());
      return 1;
    }
    std::printf(
        "WORKLOAD scenario=%s threads=%zu calls=%llu throughput=%.0f ops/s "
        "p50=%lluns p99=%lluns p999=%lluns audit{%s}\n",
        report->scenario.c_str(), report->threads,
        static_cast<unsigned long long>(report->calls_completed), report->throughput_ops,
        static_cast<unsigned long long>(report->p50_ns),
        static_cast<unsigned long long>(report->p99_ns),
        static_cast<unsigned long long>(report->p999_ns),
        report->audit.Summary().c_str());
    if (!report->audit.clean()) {
      for (const auto& v : report->audit.samples) {
        std::fprintf(stderr, "  [%s] %s\n", v.kind.c_str(), v.detail.c_str());
      }
      clean = false;
    }
    reports.push_back(report->ToJson());
  }

  std::ofstream file(out_path, std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "FAIL: cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  file << "[\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    file << reports[i] << (i + 1 < reports.size() ? ",\n" : "\n");
  }
  file << "]\n";
  file.flush();
  if (!file) {
    std::fprintf(stderr, "FAIL: short write to %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu scenarios)\n", out_path.c_str(), reports.size());

  nexus::metrics::DumpRegistryToEnvPath();
  if (!clean) {
    std::fprintf(stderr, "FAIL: audit violations during workload sweep\n");
    return 1;
  }
  return 0;
}
