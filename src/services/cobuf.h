// Constrained buffers — cobufs (§4.1).
//
// An owner-tagged opaque byte buffer. Untrusted application code (Fauxbook
// tenant code) can store, retrieve-as-handle, concatenate, and slice cobufs
// but can never observe their contents: there is no read API that does not
// require speaking for the owner. Collation (copying data between cobufs)
// is gated on a delegation oracle — data may flow from buffer S to buffer D
// only if D's owner speaks for S's owner (the social-graph edge in
// Fauxbook). The interface deliberately offers no data-dependent branching:
// it is not Turing-complete, which is the point.
#ifndef NEXUS_SERVICES_COBUF_H_
#define NEXUS_SERVICES_COBUF_H_

#include <functional>
#include <map>

#include "nal/term.h"
#include "util/bytes.h"
#include "util/status.h"

namespace nexus::services {

using CobufId = uint64_t;

// Answers "may data owned by `source` flow to a buffer owned by
// `recipient`?" — i.e. does recipient speaksfor source hold.
using DelegationOracle =
    std::function<bool(const nal::Principal& recipient, const nal::Principal& source)>;

class CobufManager {
 public:
  explicit CobufManager(DelegationOracle oracle) : oracle_(std::move(oracle)) {}

  // --- Trusted-layer API (the web server / framework, not tenant code).
  // Creates a cobuf holding `data` owned by `owner` (the authenticated
  // session principal; tenant code cannot forge this).
  CobufId CreateOwned(const nal::Principal& owner, Bytes data);
  // Extraction requires the requester to speak for the owner.
  Result<Bytes> Extract(CobufId id, const nal::Principal& requester) const;

  // --- Tenant-visible API: content-oblivious manipulations only.
  Result<size_t> Length(CobufId id) const;
  Result<nal::Principal> Owner(CobufId id) const;
  // New cobuf with the same owner holding bytes [from, from+len).
  Result<CobufId> Slice(CobufId id, size_t from, size_t len);
  // Appends src's contents to dst. Requires owner(dst) speaksfor owner(src)
  // per the delegation oracle (or identical owners).
  Status Append(CobufId dst, CobufId src);
  // New empty cobuf owned like `like`.
  Result<CobufId> CreateLike(CobufId like);
  Status Destroy(CobufId id);

  size_t count() const { return buffers_.size(); }

 private:
  struct Cobuf {
    nal::Principal owner;
    Bytes data;
  };

  bool MayFlow(const nal::Principal& recipient, const nal::Principal& source) const;

  DelegationOracle oracle_;
  std::map<CobufId, Cobuf> buffers_;
  CobufId next_id_ = 1;
};

}  // namespace nexus::services

#endif  // NEXUS_SERVICES_COBUF_H_
