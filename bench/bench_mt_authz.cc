// Multi-threaded authorization sweep: worker threads × remote fraction.
//
// The concurrent frontend's two regimes, measured separately:
//
//   BM_mt_cached_authorize (threads sweep, 0% remote): every tuple is
//     pre-warmed into the sharded decision cache and each worker drives
//     its OWN subject, so lookups land on distinct shards and the hit
//     path scales with cores — the ROADMAP's contention win. On an
//     N-core machine expect near-linear items_per_second growth from
//     Threads(1) to Threads(N); on fewer cores the threads timeshare and
//     the numbers flatten (the acceptance sweep runs on >=8 cores).
//
//   BM_mt_miss_authorize (threads sweep, 0% HIT): the decision cache is
//     DISABLED in this world, so every operation is a full miss through
//     the engine — goal lookup, state-plane snapshot, stripe lock, guard
//     evaluation. Each worker drives its own subject, i.e. its own engine
//     stripe: this is the path the read-write split parallelized (under
//     the PR-3 monitor it serialized on one recursive mutex regardless of
//     thread count). Expect miss throughput to scale with cores like the
//     cached sweep does, just at a higher per-op cost.
//
//   BM_mt_authorize_batch (threads × remote%): cache-miss batches flow
//     through the engine's striped core; remote-leaning batches
//     additionally pay attested VouchBatch round trips (issued as
//     overlapping futures by the async guard pipeline, overlapping across
//     subjects thanks to the stripes).
//
// Subjects, objects, goals, and proofs are all built once (magic-static
// World) on whichever thread arrives first; benchmark threads then only
// touch thread-safe surfaces (Kernel::Authorize/AuthorizeBatch).
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include <memory>
#include <string>
#include <vector>

#include "core/nexus.h"
#include "nal/parser.h"
#include "net/node.h"
#include "net/remote_authority.h"
#include "net/transport.h"
#include "tpm/tpm.h"

namespace {

constexpr int kMaxThreads = 8;
constexpr size_t kObjectsPerSubject = 64;

nexus::nal::Formula F(const std::string& text) {
  return *nexus::nal::ParseFormula(text);
}

struct World {
  World()
      : rng_a(101),
        rng_b(202),
        tpm_a(rng_a),
        tpm_b(rng_b),
        nexus_a(&tpm_a, nexus::core::NexusOptions{.seed = 1}),
        nexus_b(&tpm_b, nexus::core::NexusOptions{.seed = 2}),
        transport(7) {
    nexus_a.RegisterPeer("b", tpm_b.endorsement_public_key());
    nexus_b.RegisterPeer("a", tpm_a.endorsement_public_key());
    node_a = std::make_unique<nexus::net::NetNode>(&nexus_a, &transport, "a");
    node_b = std::make_unique<nexus::net::NetNode>(&nexus_b, &transport, "b");

    service = std::make_unique<nexus::net::AuthorityService>(node_b.get());
    session = std::make_unique<nexus::core::LambdaAuthority>(
        [](const nexus::nal::Formula& f) {
          return f->kind() == nexus::nal::FormulaKind::kSays &&
                 f->speaker().base() == "Session";
        },
        [](const nexus::nal::Formula&) { return true; });
    service->AddAuthority(session.get());
    remote = std::make_unique<nexus::net::RemoteAuthority>(node_a.get(), "b", nullptr,
                                                           /*default_timeout_us=*/100000);
    nexus_a.guard().AddRemoteAuthority(remote.get());
    nexus_a.guard().set_remote_query_timeout_us(100000);

    owner = *nexus_a.CreateProcess("owner", nexus::ToBytes("o"));
    nexus_a.engine().SayAs(nexus::nal::Principal("Certifier"), F("ok(subject)"));
    nexus::nal::Formula local_goal = F("Certifier says ok(subject)");

    // One subject per potential worker thread: distinct subjects hash to
    // distinct decision-cache shards.
    for (int t = 0; t < kMaxThreads; ++t) {
      nexus::kernel::ProcessId subject =
          *nexus_a.CreateProcess("worker" + std::to_string(t), nexus::ToBytes("w"));
      subjects.push_back(subject);
      cached_requests.emplace_back();
      for (size_t o = 0; o < kObjectsPerSubject; ++o) {
        std::string object = "t" + std::to_string(t) + ":l:" + std::to_string(o);
        nexus_a.engine().RegisterObject(object, owner, nexus::kernel::kKernelProcessId);
        nexus_a.engine().SetGoal(owner, "use", object, local_goal);
        nexus_a.engine().SetProof(subject, "use", object,
                                  nexus::nal::proof::Premise(local_goal));
        cached_requests[t].push_back(
            nexus::kernel::AuthzRequest::Of(subject, "use", object));
      }
      // Warm the decision cache: the cached sweep measures pure hits.
      for (const auto& request : cached_requests[t]) {
        nexus_a.kernel().Authorize(request);
      }
    }
  }

  // Per-thread tuples for the batch sweep, `remote_pct`% of which lean on
  // the remote authority (never decision-cacheable, so every iteration
  // re-runs the engine + guard pipeline).
  const std::vector<nexus::kernel::AuthzRequest>& BatchTuples(int thread, int remote_pct) {
    auto key = std::make_pair(thread, remote_pct);
    std::lock_guard<std::mutex> lock(batch_mu);
    auto it = batch_requests.find(key);
    if (it != batch_requests.end()) {
      return it->second;
    }
    std::vector<nexus::kernel::AuthzRequest>& requests = batch_requests[key];
    for (size_t i = 0; i < kObjectsPerSubject; ++i) {
      bool is_remote = i * 100 < kObjectsPerSubject * static_cast<size_t>(remote_pct);
      std::string object = "t" + std::to_string(thread) + (is_remote ? ":r:" : ":b:") +
                           std::to_string(remote_pct) + ":" + std::to_string(i);
      nexus_a.engine().RegisterObject(object, owner, nexus::kernel::kKernelProcessId);
      if (is_remote) {
        nexus::nal::Formula statement =
            F("Session says active(u" + std::to_string(thread) + "_" + std::to_string(i) + ")");
        nexus_a.engine().SetGoal(owner, "use", object, statement);
        nexus_a.engine().SetProof(subjects[thread], "use", object,
                                  nexus::nal::proof::Authority(statement));
      } else {
        nexus::nal::Formula goal = F("Certifier says ok(subject)");
        nexus_a.engine().SetGoal(owner, "use", object, goal);
        nexus_a.engine().SetProof(subjects[thread], "use", object,
                                  nexus::nal::proof::Premise(goal));
      }
      requests.push_back(nexus::kernel::AuthzRequest::Of(subjects[thread], "use", object));
    }
    return requests;
  }

  nexus::Rng rng_a, rng_b;
  nexus::tpm::Tpm tpm_a, tpm_b;
  nexus::core::Nexus nexus_a, nexus_b;
  nexus::net::Transport transport;
  std::unique_ptr<nexus::net::NetNode> node_a, node_b;
  std::unique_ptr<nexus::net::AuthorityService> service;
  std::unique_ptr<nexus::core::LambdaAuthority> session;
  std::unique_ptr<nexus::net::RemoteAuthority> remote;
  nexus::kernel::ProcessId owner = 0;
  std::vector<nexus::kernel::ProcessId> subjects;
  std::vector<std::vector<nexus::kernel::AuthzRequest>> cached_requests;
  std::mutex batch_mu;
  std::map<std::pair<int, int>, std::vector<nexus::kernel::AuthzRequest>> batch_requests;
};

World& W() {
  // Magic static: the first benchmark thread constructs (single-threaded),
  // every other thread blocks until it is ready.
  static World* world = new World();
  return *world;
}

// A second, smaller world with the decision cache OFF: every Authorize is
// a full engine miss. Local-only (premise proofs) — the remote-miss
// regime is covered by the batch sweep above.
struct MissWorld {
  MissWorld() : rng(303), tpm(rng), nexus(&tpm, nexus::core::NexusOptions{.seed = 3}) {
    nexus.kernel().set_decision_cache_enabled(false);
    owner = *nexus.CreateProcess("owner", nexus::ToBytes("o"));
    nexus.engine().SayAs(nexus::nal::Principal("Certifier"), F("ok(subject)"));
    nexus::nal::Formula goal = F("Certifier says ok(subject)");
    for (int t = 0; t < kMaxThreads; ++t) {
      nexus::kernel::ProcessId subject =
          *nexus.CreateProcess("misser" + std::to_string(t), nexus::ToBytes("m"));
      requests.emplace_back();
      for (size_t o = 0; o < kObjectsPerSubject; ++o) {
        std::string object = "m" + std::to_string(t) + ":" + std::to_string(o);
        nexus.engine().RegisterObject(object, owner, nexus::kernel::kKernelProcessId);
        nexus.engine().SetGoal(owner, "use", object, goal);
        nexus.engine().SetProof(subject, "use", object, nexus::nal::proof::Premise(goal));
        requests[t].push_back(nexus::kernel::AuthzRequest::Of(subject, "use", object));
      }
    }
  }

  nexus::Rng rng;
  nexus::tpm::Tpm tpm;
  nexus::core::Nexus nexus;
  nexus::kernel::ProcessId owner = 0;
  std::vector<std::vector<nexus::kernel::AuthzRequest>> requests;
};

MissWorld& MW() {
  static MissWorld* world = new MissWorld();
  return *world;
}

// Pure decision-cache hits, one shard per worker: the scaling headline.
void BM_mt_cached_authorize(benchmark::State& state) {
  World& w = W();
  const auto& requests = w.cached_requests[state.thread_index() % kMaxThreads];
  for (auto _ : state) {
    for (const auto& request : requests) {
      benchmark::DoNotOptimize(w.nexus_a.kernel().Authorize(request));
    }
  }
  state.SetItemsProcessed(state.iterations() * requests.size());
}

// Miss-heavy sweep (0% hit): the decision cache is disabled, so every
// operation runs the whole engine miss path under the subject's stripe.
void BM_mt_miss_authorize(benchmark::State& state) {
  MissWorld& w = MW();
  const auto& requests = w.requests[state.thread_index() % kMaxThreads];
  for (auto _ : state) {
    for (const auto& request : requests) {
      benchmark::DoNotOptimize(w.nexus.kernel().Authorize(request));
    }
  }
  state.SetItemsProcessed(state.iterations() * requests.size());
}

// Batched misses through the striped engine + async guard pipeline.
void BM_mt_authorize_batch(benchmark::State& state) {
  World& w = W();
  int remote_pct = static_cast<int>(state.range(0));
  const auto& requests =
      w.BatchTuples(state.thread_index() % kMaxThreads, remote_pct);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.nexus_a.kernel().AuthorizeBatch(requests));
  }
  state.SetItemsProcessed(state.iterations() * requests.size());
}

BENCHMARK(BM_mt_cached_authorize)->ThreadRange(1, kMaxThreads)->UseRealTime();
BENCHMARK(BM_mt_miss_authorize)->ThreadRange(1, kMaxThreads)->UseRealTime();
BENCHMARK(BM_mt_authorize_batch)
    ->ArgsProduct({{0, 25, 100}})
    ->ArgNames({"remote%"})
    ->ThreadRange(1, 4)
    ->UseRealTime();

}  // namespace

NEXUS_BENCHMARK_MAIN();
