// Parser for the textual NAL syntax used by the `say` and `setgoal` system
// calls. Grammar (lowest to highest precedence):
//
//   formula  := or_f ("=>" or_f)*                        (right associative)
//   or_f     := and_f ("or" and_f)*
//   and_f    := unary ("and" unary)*
//   unary    := "not" unary | statement
//   statement:= principal "says" unary
//             | principal "speaksfor" principal ["on" IDENT]
//             | atom
//   atom     := "(" formula ")" | "true" | "false"
//             | term relop term | IDENT "(" term ("," term)* ")"
//   term     := INT | STRING | principal-or-symbol | "$" IDENT
//   principal:= IDENT ("." IDENT)*      (IDENTs may contain '/' and ':')
//
// Examples from the paper, accepted verbatim up to ASCII connectives:
//   "TypeChecker says isTypeSafe(PGM)"
//   "Nexus says /proc/ipd/30 speaksfor IPCAnalyzer"
//   "/proc/ipd/30 says not hasPath(/proc/ipd/12, Filesystem)"
//   "Filesystem says NTP speaksfor Filesystem on TimeNow"
//   "NTP says TimeNow < 20260319"
//   "$X says openFile(report) and SafetyCertifier says safe($X)"
#ifndef NEXUS_NAL_PARSER_H_
#define NEXUS_NAL_PARSER_H_

#include <string_view>

#include "nal/formula.h"
#include "util/status.h"

namespace nexus::nal {

// Parses a NAL formula. Returns INVALID_ARGUMENT with a position-annotated
// message on syntax errors.
Result<Formula> ParseFormula(std::string_view text);

// Parses a dotted principal name ("HW.kernel.process23", "/proc/ipd/12").
Result<Principal> ParsePrincipal(std::string_view text);

}  // namespace nexus::nal

#endif  // NEXUS_NAL_PARSER_H_
