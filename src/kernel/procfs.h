// The introspection namespace (§3.1).
//
// A Plan 9-style grey-box information service: processes and the kernel
// publish key=value bindings under a hierarchical namespace, and labeling
// functions read them to analyze live system state. Each node is logically
// the label `owner says key = value`. Values are live: a node is backed by
// a provider callback so reads always observe current state. Watchers
// provide the change-notification mechanism the paper's term language
// relies on.
//
// Internally thread-safe under a reader-writer lock: reads and lists take
// the reader side, publish/remove the writer side, so process lifecycle
// (which publishes and retires /proc nodes) runs concurrently with worker
// threads reading introspection state mid-miss. Provider and watcher
// callbacks are invoked WITHOUT the lock held (they may re-enter the
// namespace); a provider must therefore be safe to call after its node was
// removed — the usual case, since providers capture by value.
#ifndef NEXUS_KERNEL_PROCFS_H_
#define NEXUS_KERNEL_PROCFS_H_

#include <functional>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "kernel/types.h"
#include "util/status.h"

namespace nexus::kernel {

class IntrospectionFs {
 public:
  using Provider = std::function<std::string()>;
  using Watcher = std::function<void(const std::string& path, const std::string& value)>;

  // Publishes a live node. The owner is recorded so the value can be
  // attributed (`owner says path = value`). Re-publishing replaces.
  void Publish(ProcessId owner, const std::string& path, Provider provider);

  // Publishes a constant value.
  void PublishValue(ProcessId owner, const std::string& path, std::string value);

  // Removes a node (and nothing else).
  Status Remove(const std::string& path);

  // Removes every node owned by a process (process exit).
  void RemoveOwned(ProcessId owner);

  // Reads a node's current value. Takes a view so the typed-slot proc_read
  // syscall can look a path up without materializing a key string.
  Result<std::string> Read(std::string_view path) const;

  // Returns the owner of a node (for attribution).
  Result<ProcessId> Owner(std::string_view path) const;

  // Lists direct children of a directory path ("/proc/ipd" lists process
  // nodes). A node x/y/z makes x and x/y directories.
  std::vector<std::string> List(const std::string& directory) const;

  // Registers a watcher invoked on every Publish/PublishValue under
  // `prefix`. Returns a token usable with Unwatch.
  uint64_t Watch(const std::string& prefix, Watcher watcher);
  void Unwatch(uint64_t token);

  size_t NodeCount() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return nodes_.size();
  }

 private:
  struct Node {
    ProcessId owner;
    Provider provider;
  };
  struct WatchEntry {
    std::string prefix;
    Watcher watcher;
  };

  mutable std::shared_mutex mu_;
  // Transparent comparator: lookups by string_view allocate nothing.
  std::map<std::string, Node, std::less<>> nodes_;
  std::map<uint64_t, WatchEntry> watchers_;
  uint64_t next_watch_token_ = 1;
};

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_PROCFS_H_
