// Convergent replicated mesh state: the peer registry and certificate
// store a federation gossips between instances.
//
// The design target is strong eventual consistency in the sense of the
// Gomes et al. formulation (PAPERS.md): both collections are state-based
// grow-only maps whose import operation is IDEMPOTENT (re-importing a
// record the replica already holds is a no-op) and COMMUTATIVE (the final
// state is independent of arrival order), so any two replicas that have
// received the same SET of records — in any order, with any duplication —
// hold byte-identical state. CanonicalSnapshot()/Digest() make that
// assertable: they serialize the state in a canonical (sorted) order, and
// the convergence tests compare snapshots byte for byte.
//
// Trust note: the registry is bookkeeping, not a trust decision. A peer
// record only becomes a trust anchor when the gossip layer forwards it to
// Nexus::RegisterPeer over an ATTESTED channel, and a certificate only
// enters the store after VerifyCertificate walked its chain to an already
// trusted EK (gossip.cc). A record that fails those checks never enters
// the registry, so it is never re-gossiped — a tampered record cannot
// poison neighbors through an honest node.
#ifndef NEXUS_NET_MESH_REGISTRY_H_
#define NEXUS_NET_MESH_REGISTRY_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/transport.h"
#include "util/bytes.h"
#include "util/status.h"

namespace nexus::net::mesh {

// One gossiped peer identity: a node name bound to its serialized TPM
// endorsement public key (the out-of-band trust anchor of §2.4, now
// propagated in-band over channels that are themselves EK-rooted).
struct PeerRecord {
  NodeId name;
  Bytes ek;  // crypto::RsaPublicKey::Serialize() bytes.

  Bytes SerializeRecord() const;
  static Result<PeerRecord> DeserializeRecord(ByteView data);
};

class MeshRegistry {
 public:
  enum class Import : uint8_t {
    kNew,        // First sighting; the record was added.
    kDuplicate,  // Already held, byte-identical: idempotent no-op.
    kConflict,   // Same key, DIFFERENT bytes: rejected (first write pins).
  };

  // Both imports are thread-safe and follow the same convergence contract:
  // insert if absent, no-op if identical, reject-and-count if conflicting.
  Import ImportPeer(const PeerRecord& record);
  // Certificates are keyed by their content digest, so a conflict is
  // impossible by construction — every import is kNew or kDuplicate.
  Import ImportCertificate(const Bytes& cert_bytes);

  bool HasPeer(const NodeId& name) const;
  bool HasCertificate(const std::string& digest) const;
  std::vector<PeerRecord> Peers() const;
  std::vector<Bytes> Certificates() const;

  size_t peer_count() const;
  size_t cert_count() const;
  uint64_t conflicts() const;

  // Canonical serialization: peers in name order, certificates in digest
  // order, each length-prefixed. Two converged replicas produce EQUAL
  // byte strings — the convergence tests' oracle.
  Bytes CanonicalSnapshot() const;
  // Hex SHA-256 of CanonicalSnapshot(), for cheap N-way comparison.
  std::string Digest() const;

 private:
  mutable std::mutex mu_;
  std::map<NodeId, Bytes> peers_;       // name -> serialized EK
  std::map<std::string, Bytes> certs_;  // content digest -> certificate bytes
  uint64_t conflicts_ = 0;
};

}  // namespace nexus::net::mesh

#endif  // NEXUS_NET_MESH_REGISTRY_H_
