#include "core/guard.h"

#include "nal/parser.h"
#include "nal/proof.h"

namespace nexus::core {

using kernel::AuthzDecision;
using kernel::AuthzRequest;

Guard::Guard(kernel::Kernel* kernel) : Guard(kernel, Config{}) {}

Guard::Guard(kernel::Kernel* kernel, const Config& config) : kernel_(kernel), config_(config) {}

void Guard::AddEmbeddedAuthority(Authority* authority) {
  embedded_authorities_.push_back(authority);
}

void Guard::AddAuthorityPort(kernel::PortId port) { authority_ports_.push_back(port); }

void Guard::AddRemoteAuthority(Authority* authority) {
  remote_authorities_.push_back(authority);
}

bool Guard::ResolveLocalAuthority(const nal::Formula& statement, bool* handled) {
  *handled = true;
  for (Authority* authority : embedded_authorities_) {
    if (authority->Handles(statement)) {
      return authority->Vouches(statement);
    }
  }
  // External authorities: one IPC round trip each. The answer is consumed
  // immediately and never stored (§2.7).
  for (kernel::PortId port : authority_ports_) {
    kernel::IpcMessage query;
    query.operation = "check";
    query.args.push_back(statement->ToString());
    kernel::IpcReply reply = kernel_->Call(kernel::kKernelProcessId, port, query);
    if (reply.status.ok()) {
      return reply.value == 1;
    }
    if (reply.status.code() != ErrorCode::kNotFound) {
      return false;  // Authority reachable but erroring: fail closed.
    }
  }
  *handled = false;
  return false;
}

Authority* Guard::RemoteAuthorityFor(const nal::Formula& statement) {
  for (Authority* authority : remote_authorities_) {
    if (authority->Handles(statement)) {
      return authority;
    }
  }
  return nullptr;
}

bool Guard::QueryAuthorities(const nal::Formula& statement) {
  ++stats_.authority_queries;
  bool handled = false;
  bool answer = ResolveLocalAuthority(statement, &handled);
  if (handled) {
    return answer;
  }
  // Remote authorities: a query crossing the instance boundary, budgeted by
  // the configured deadline. No answer in time means DENY (§2.7 answers are
  // fresh-or-nothing; a stale late answer is worthless).
  if (Authority* remote = RemoteAuthorityFor(statement)) {
    ++stats_.remote_queries;
    return remote->VouchesWithin(statement, config_.remote_query_timeout_us);
  }
  return false;  // No authority evaluates this statement.
}

const bool* Guard::AuthorityMemo::Find(const nal::Formula& statement) const {
  auto bucket = buckets_.find(nal::StructuralHash(statement));
  if (bucket == buckets_.end()) {
    return nullptr;
  }
  for (const Entry& entry : bucket->second) {
    if (nal::Equals(entry.statement, statement)) {
      return &entry.answer;
    }
  }
  return nullptr;
}

void Guard::AuthorityMemo::Insert(const nal::Formula& statement, bool answer) {
  std::vector<Entry>& bucket = buckets_[nal::StructuralHash(statement)];
  for (Entry& entry : bucket) {
    if (nal::Equals(entry.statement, statement)) {
      entry.answer = answer;
      return;
    }
  }
  bucket.push_back(Entry{statement, answer});
}

void Guard::PrefetchAuthorities(std::span<const BatchItem> items, AuthorityMemo* memo) {
  // Serial checking stops at the first declined leaf, so a malicious proof
  // stuffed with authority leaves must not amplify into unbounded eager
  // consultations (or a giant VouchBatch payload). Leaves beyond the cap
  // are simply not prefetched; the per-check callback falls back to the
  // lazy serial path for them, preserving correctness.
  constexpr size_t kMaxPrefetchLeavesPerProof = 64;
  // Unique authority statements across the batch, in first-seen order.
  std::vector<nal::Formula> unique;
  for (const BatchItem& item : items) {
    // Items CheckImpl short-circuits (no goal, trivially-true goal, no
    // proof) never reach proof checking serially; consulting their leaves
    // here would create consultations the serial path cannot produce.
    if (item.goal == nullptr || item.goal->kind() == nal::FormulaKind::kTrue ||
        item.proof == nullptr) {
      continue;
    }
    std::vector<nal::Formula> leaves = nal::AuthorityLeaves(item.proof);
    size_t considered = std::min(leaves.size(), kMaxPrefetchLeavesPerProof);
    for (size_t i = 0; i < considered; ++i) {
      const nal::Formula& leaf = leaves[i];
      if (memo->Contains(leaf)) {
        ++stats_.batch_collapsed_queries;
        continue;
      }
      memo->Insert(leaf, false);  // Reserve; answered below.
      unique.push_back(leaf);
    }
  }

  // Per-remote-authority coalescing: every statement bound for one remote
  // peer travels in a single VouchBatch round trip.
  std::map<Authority*, std::vector<nal::Formula>> remote_groups;
  for (const nal::Formula& statement : unique) {
    ++stats_.authority_queries;
    bool handled = false;
    bool answer = ResolveLocalAuthority(statement, &handled);
    if (handled) {
      memo->Insert(statement, answer);
      continue;
    }
    if (Authority* remote = RemoteAuthorityFor(statement)) {
      remote_groups[remote].push_back(statement);
    }
    // else: no authority evaluates it; the reserved `false` stands.
  }
  for (auto& [remote, statements] : remote_groups) {
    ++stats_.remote_queries;  // One attested round trip for the whole group.
    std::vector<bool> answers =
        remote->VouchBatch(statements, config_.remote_query_timeout_us);
    for (size_t i = 0; i < statements.size(); ++i) {
      memo->Insert(statements[i], i < answers.size() && answers[i]);
    }
  }
}

void Guard::InsertCacheEntry(kernel::ProcessId quota_root, const CacheKey& key,
                             bool verdict) {
  auto evict = [this](std::list<CacheEntry>::iterator it) {
    root_usage_[it->quota_root] -= 1;
    cache_index_.erase(it->key);
    lru_.erase(it);
    ++stats_.evictions;
  };

  // Quota enforcement: evict this root's own oldest entries first (§2.9).
  while (root_usage_[quota_root] >= config_.per_root_quota) {
    for (auto it = std::prev(lru_.end());; --it) {
      if (it->quota_root == quota_root) {
        evict(it);
        break;
      }
      if (it == lru_.begin()) {
        break;
      }
    }
  }
  // Capacity: preferentially evict entries charged to the same principal,
  // falling back to global LRU.
  if (lru_.size() >= config_.proof_cache_capacity) {
    bool evicted = false;
    for (auto it = std::prev(lru_.end());; --it) {
      if (it->quota_root == quota_root) {
        evict(it);
        evicted = true;
        break;
      }
      if (it == lru_.begin()) {
        break;
      }
    }
    if (!evicted) {
      evict(std::prev(lru_.end()));
    }
  }

  lru_.push_front(CacheEntry{key, verdict, quota_root});
  cache_index_[key] = lru_.begin();
  root_usage_[quota_root] += 1;
}

AuthzDecision Guard::Check(const AuthzRequest& request, const nal::Formula& goal,
                           const nal::Proof& proof,
                           const std::vector<nal::Formula>& credentials,
                           uint64_t state_version, nal::FormulaId goal_id) {
  return CheckImpl(request, goal, goal_id, proof, credentials, state_version, nullptr);
}

AuthzDecision Guard::CheckImpl(const AuthzRequest& request, const nal::Formula& goal,
                               nal::FormulaId goal_id, const nal::Proof& proof,
                               const std::vector<nal::Formula>& credentials,
                               uint64_t state_version, const AuthorityMemo* memo) {
  ++stats_.checks;

  if (goal == nullptr) {
    return AuthzDecision::Deny(Internal("guard invoked without a goal"), false);
  }
  if (goal->kind() == nal::FormulaKind::kTrue) {
    return AuthzDecision::Allow();
  }
  if (proof == nullptr) {
    return AuthzDecision::Deny(
        PermissionDenied("no proof supplied for goal " + goal->ToString()), true);
  }

  kernel::ProcessId quota_root = request.subject;
  if (Result<const kernel::Process*> p = kernel_->GetProcess(request.subject); p.ok()) {
    quota_root = (*p)->quota_root;
  }

  // Proof-cache lookup is sound only for proofs without authority leaves,
  // and only when the caller supplied a state version (the version stamp is
  // what ties a cached verdict to the credential set it was checked under).
  bool static_proof = nal::IsStaticallyCacheable(proof);
  bool may_cache = static_proof && state_version != 0;
  CacheKey cache_key;
  if (may_cache) {
    if (goal_id == nal::kInvalidFormulaId) {
      // Pointer-memoized in the interner: goals stored canonically (the
      // GoalStore interns on SetGoal) cost one hash-map probe here.
      goal_id = nal::Interner::Global().Intern(goal);
    }
    cache_key = CacheKey{goal_id, reinterpret_cast<uintptr_t>(proof.get()), state_version};
    auto it = cache_index_.find(cache_key);
    if (it != cache_index_.end()) {
      ++stats_.cache_hits;
      lru_.splice(lru_.begin(), lru_, it->second);  // LRU refresh.
      bool allowed = it->second->verdict;
      return allowed ? AuthzDecision::Allow()
                     : AuthzDecision::Deny(PermissionDenied("denied (cached proof verdict)"),
                                           true);
    }
  }

  uint32_t consulted = 0;
  nal::AuthorityCallback authority = [this, memo, &consulted](const nal::Formula& f) {
    ++consulted;
    if (memo != nullptr) {
      if (const bool* answer = memo->Find(f)) {
        return *answer;  // Prefetched batch-wide; consumed, not stored.
      }
    }
    return QueryAuthorities(f);
  };
  nal::CheckResult result = nal::CheckProof(proof, goal, credentials, authority);

  // A denial caused by a missing credential must not be cached anywhere:
  // the subject may acquire the label later without touching its proof.
  bool verdict_cacheable = result.cacheable && !result.missing_credential;
  if (may_cache && !result.missing_credential) {
    InsertCacheEntry(quota_root, cache_key, result.status.ok());
  }
  AuthzDecision decision = AuthzDecision::FromStatus(result.status, verdict_cacheable);
  decision.consulted_authorities = consulted;
  return decision;
}

std::vector<AuthzDecision> Guard::CheckBatch(std::span<const BatchItem> items) {
  AuthorityMemo memo;
  PrefetchAuthorities(items, &memo);
  std::vector<AuthzDecision> decisions;
  decisions.reserve(items.size());
  for (const BatchItem& item : items) {
    decisions.push_back(CheckImpl(item.request, item.goal, item.goal_id, item.proof,
                                  item.credentials, item.state_version, &memo));
  }
  return decisions;
}

void Guard::FlushCache() {
  // All three structures drop together: a stale root_usage_ survivor would
  // wrongly trigger quota eviction on the next fill (§2.9 quotas count live
  // entries, not history).
  lru_.clear();
  cache_index_.clear();
  root_usage_.clear();
}

GuardPortHandler::GuardPortHandler(Guard* guard, const GoalStore* goals)
    : guard_(guard), goals_(goals) {}

kernel::IpcReply GuardPortHandler::Handle(const kernel::IpcContext& context,
                                          const kernel::IpcMessage& message) {
  // Protocol: check <subject> <operation> <object> <proof-text>, with
  // newline-separated credential formulas in `data`.
  if (message.operation != "check" || message.args.size() < 4) {
    return kernel::IpcReply{
        InvalidArgument("guard protocol: check <subject> <op> <object> <proof>"), {}, {}, 0};
  }
  (void)context;
  kernel::ProcessId subject = std::stoull(message.args[0]);
  const std::string& operation = message.args[1];
  const std::string& object = message.args[2];

  std::optional<GoalEntry> goal = goals_->Get(operation, object);
  if (!goal.has_value()) {
    return kernel::IpcReply{NotFound("no goal for this operation/object"), {}, {}, 0};
  }

  Result<nal::Proof> proof = nal::DeserializeProof(message.args[3]);
  if (!proof.ok()) {
    return kernel::IpcReply{proof.status(), {}, {}, 0};
  }

  std::vector<nal::Formula> credentials;
  std::string blob = ToString(message.data);
  size_t start = 0;
  while (start < blob.size()) {
    size_t end = blob.find('\n', start);
    if (end == std::string::npos) {
      end = blob.size();
    }
    if (end > start) {
      Result<nal::Formula> cred = nal::ParseFormula(blob.substr(start, end - start));
      if (!cred.ok()) {
        return kernel::IpcReply{cred.status(), {}, {}, 0};
      }
      credentials.push_back(*cred);
    }
    start = end + 1;
  }

  AuthzDecision decision = guard_->Check(AuthzRequest::Of(subject, operation, object),
                                         goal->goal, *proof, credentials);
  return kernel::IpcReply{decision.ToStatus(), {}, {}, decision.cacheable ? 1 : 0};
}

}  // namespace nexus::core
