// The goalstore (§2.5).
//
// Associates a NAL goal formula (and optionally a designated guard port)
// with each (operation, resource) pair. Absence of a goal means the
// kernel-designated guard's bootstrap policy applies: only the object's
// owner or its resource manager may operate on it.
//
// Pairs are keyed on interned (OpId, ObjectId) — one integer map probe per
// lookup. Goal formulas are hash-consed on insertion, so the stored node is
// canonical and the entry carries its FormulaId for O(1) identity in guard
// cache keys. String-taking overloads intern-and-forward (and reject names
// containing '\x1f', the legacy key separator).
//
// Both stores are internally thread-safe under reader-writer locks: Get /
// Owner / Manager / Known take the reader side (the engine's read-mostly
// plane and designated-guard port handlers probe them from worker threads
// mid-miss), SetGoal / ClearGoal / Register / TransferOwnership the writer
// side. Returned GoalEntry values are copies; the goal formula inside is a
// canonical immortal interned node, safe to use with no lock held.
#ifndef NEXUS_CORE_GOALSTORE_H_
#define NEXUS_CORE_GOALSTORE_H_

#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>

#include "kernel/types.h"
#include "nal/formula.h"
#include "nal/interner.h"
#include "util/status.h"

namespace nexus::core {

// Rejects object/operation names that would have collided in the legacy
// "op\x1f.object" string keys. Interned keys cannot collide, but the shim
// surface must refuse such names so serialized forms stay unambiguous.
Status ValidateAuthzName(std::string_view name, std::string_view what);

struct GoalEntry {
  nal::Formula goal;
  // Interned identity of `goal` (the canonical node); guards key their
  // proof-check caches on this instead of goal->ToString().
  nal::FormulaId goal_id = nal::kInvalidFormulaId;
  // 0 = kernel-designated default guard.
  kernel::PortId guard_port = 0;
};

class GoalStore {
 public:
  Status SetGoal(kernel::OpId op, kernel::ObjectId obj, nal::Formula goal,
                 kernel::PortId guard_port = 0);
  Status SetGoal(const std::string& operation, const std::string& object, nal::Formula goal,
                 kernel::PortId guard_port = 0);
  Status ClearGoal(kernel::OpId op, kernel::ObjectId obj);
  Status ClearGoal(const std::string& operation, const std::string& object);
  std::optional<GoalEntry> Get(kernel::OpId op, kernel::ObjectId obj) const;
  std::optional<GoalEntry> Get(const std::string& operation, const std::string& object) const {
    // Read path: never-interned names cannot have goals, and must not grow
    // the intern tables (probing with novel names would otherwise leak).
    std::optional<kernel::OpId> op = kernel::FindOp(operation);
    std::optional<kernel::ObjectId> obj = kernel::FindObject(object);
    if (!op.has_value() || !obj.has_value()) {
      return std::nullopt;
    }
    return Get(*op, *obj);
  }
  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return goals_.size();
  }

 private:
  static uint64_t Key(kernel::OpId op, kernel::ObjectId obj) {
    return (static_cast<uint64_t>(op) << 32) | obj;
  }

  mutable std::shared_mutex mu_;
  std::map<uint64_t, GoalEntry> goals_;
};

// Object ownership registry backing the bootstrap policy: a nascent object
// with no goal formula may be touched only by its owner or the resource
// manager that created it (§2.6).
class ObjectRegistry {
 public:
  Status Register(kernel::ObjectId object, kernel::ProcessId owner,
                  kernel::ProcessId manager);
  Status Register(const std::string& object, kernel::ProcessId owner,
                  kernel::ProcessId manager);
  Status TransferOwnership(kernel::ObjectId object, kernel::ProcessId new_owner);
  Status TransferOwnership(const std::string& object, kernel::ProcessId new_owner) {
    std::optional<kernel::ObjectId> id = kernel::FindObject(object);
    return id.has_value() ? TransferOwnership(*id, new_owner)
                          : NotFound("unknown object: " + object);
  }
  // Read paths resolve without interning: a name never registered cannot
  // be known, and lookups must not grow the append-only intern tables.
  std::optional<kernel::ProcessId> Owner(kernel::ObjectId object) const;
  std::optional<kernel::ProcessId> Owner(const std::string& object) const {
    std::optional<kernel::ObjectId> id = kernel::FindObject(object);
    return id.has_value() ? Owner(*id) : std::nullopt;
  }
  std::optional<kernel::ProcessId> Manager(kernel::ObjectId object) const;
  std::optional<kernel::ProcessId> Manager(const std::string& object) const {
    std::optional<kernel::ObjectId> id = kernel::FindObject(object);
    return id.has_value() ? Manager(*id) : std::nullopt;
  }
  bool Known(kernel::ObjectId object) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return entries_.contains(object);
  }
  bool Known(const std::string& object) const {
    std::optional<kernel::ObjectId> id = kernel::FindObject(object);
    return id.has_value() && Known(*id);
  }

 private:
  struct Entry {
    kernel::ProcessId owner;
    kernel::ProcessId manager;
  };
  mutable std::shared_mutex mu_;
  std::map<kernel::ObjectId, Entry> entries_;
};

}  // namespace nexus::core

#endif  // NEXUS_CORE_GOALSTORE_H_
