#include "kernel/decision_cache.h"

namespace nexus::kernel {

namespace {

// FNV-1a over a string, folded with a seed.
uint64_t HashString(std::string_view s, uint64_t seed) {
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t HashTuple(ProcessId subject, std::string_view operation, std::string_view object) {
  uint64_t h = HashString(operation, 0x9e3779b97f4a7c15ULL);
  h = HashString(object, h);
  h ^= subject + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

DecisionCache::DecisionCache() : DecisionCache(Config{}) {}

DecisionCache::DecisionCache(const Config& config) { Resize(config); }

void DecisionCache::Resize(const Config& config) {
  config_ = config;
  entries_.assign(config.num_subregions * config.entries_per_subregion, Entry{});
}

void DecisionCache::Clear() {
  for (Entry& e : entries_) {
    e.valid = false;
  }
}

size_t DecisionCache::SubregionIndex(std::string_view operation, std::string_view object) const {
  // Subject deliberately excluded: all entries for one (operation, object)
  // land in the same subregion so setgoal invalidation is one memset.
  uint64_t h = HashString(operation, 0x51ed270b0a1ce16dULL);
  h = HashString(object, h);
  return static_cast<size_t>(h % config_.num_subregions);
}

DecisionCache::Entry* DecisionCache::Find(ProcessId subject, std::string_view operation,
                                          std::string_view object) {
  size_t sub = SubregionIndex(operation, object);
  uint64_t key = HashTuple(subject, operation, object);
  size_t base = sub * config_.entries_per_subregion;
  size_t start = static_cast<size_t>(key % config_.entries_per_subregion);
  // Linear probe within the subregion.
  for (size_t i = 0; i < config_.entries_per_subregion; ++i) {
    Entry& e = entries_[base + (start + i) % config_.entries_per_subregion];
    if (e.valid && e.key_hash == key && e.subject == subject && e.operation == operation &&
        e.object == object) {
      return &e;
    }
    if (!e.valid) {
      return nullptr;  // Probe chain ends at the first empty slot.
    }
  }
  return nullptr;
}

std::optional<bool> DecisionCache::Lookup(ProcessId subject, std::string_view operation,
                                          std::string_view object) {
  Entry* e = Find(subject, operation, object);
  if (e == nullptr) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return e->allow;
}

void DecisionCache::Insert(ProcessId subject, std::string_view operation,
                           std::string_view object, bool allow) {
  size_t sub = SubregionIndex(operation, object);
  uint64_t key = HashTuple(subject, operation, object);
  size_t base = sub * config_.entries_per_subregion;
  size_t start = static_cast<size_t>(key % config_.entries_per_subregion);
  Entry* victim = nullptr;
  for (size_t i = 0; i < config_.entries_per_subregion; ++i) {
    Entry& e = entries_[base + (start + i) % config_.entries_per_subregion];
    if (e.valid && e.key_hash == key && e.subject == subject && e.operation == operation &&
        e.object == object) {
      victim = &e;  // Update in place.
      break;
    }
    if (!e.valid) {
      victim = &e;
      break;
    }
  }
  if (victim == nullptr) {
    // Subregion full: evict the natural slot (cache is soft state).
    victim = &entries_[base + start];
  }
  victim->valid = true;
  victim->allow = allow;
  victim->key_hash = key;
  victim->subject = subject;
  victim->operation = std::string(operation);
  victim->object = std::string(object);
  ++stats_.insertions;
}

void DecisionCache::InvalidateEntry(ProcessId subject, std::string_view operation,
                                    std::string_view object) {
  // A tombstone-free open-addressed table cannot simply clear one slot
  // without breaking probe chains, so invalidate by rewriting the chain:
  // cheapest correct option at this scale is clearing the subregion slice
  // holding the key's probe chain up to the entry.
  Entry* e = Find(subject, operation, object);
  if (e != nullptr) {
    // Clearing the entry may orphan later probes; clear the whole subregion
    // chain conservatively (bounded by entries_per_subregion).
    size_t sub = SubregionIndex(operation, object);
    size_t base = sub * config_.entries_per_subregion;
    for (size_t i = 0; i < config_.entries_per_subregion; ++i) {
      entries_[base + i].valid = false;
    }
    ++stats_.invalidated_entries;
  }
}

void DecisionCache::InvalidateSubregion(std::string_view operation, std::string_view object) {
  size_t sub = SubregionIndex(operation, object);
  size_t base = sub * config_.entries_per_subregion;
  for (size_t i = 0; i < config_.entries_per_subregion; ++i) {
    entries_[base + i].valid = false;
  }
  ++stats_.subregion_invalidations;
}

}  // namespace nexus::kernel
