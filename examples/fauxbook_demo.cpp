// Fauxbook (§4.1): the privacy-preserving social network, with the three
// guarantee classes and the attacks that must fail.
#include <cstdio>

#include "apps/fauxbook.h"
#include "tpm/tpm.h"

using namespace nexus;

int main() {
  Rng tpm_rng(7);
  tpm::Tpm hardware_tpm(tpm_rng);
  core::Nexus nexus(&hardware_tpm);
  apps::Fauxbook fauxbook(&nexus);

  // --- Users and the social graph (edges are user-initiated, §4.1).
  for (const char* user : {"alice", "bob", "eve"}) {
    fauxbook.AddUser(user);
  }
  fauxbook.AddFriend("alice", "bob");  // Alice lets Bob read her posts.
  fauxbook.PostStatus("alice", "hiking this weekend!");
  fauxbook.PostStatus("bob", "new coffee place downtown");
  fauxbook.PostStatus("eve", "anyone want to be my friend?");

  auto print_feed = [&](const char* viewer) {
    auto feed = fauxbook.ReadFeed(viewer);
    std::printf("%s's feed:\n", viewer);
    for (const std::string& item : *feed) {
      std::printf("  - %s\n", item.c_str());
    }
  };
  print_feed("bob");   // Sees his own + Alice's.
  print_feed("alice"); // Sees only her own (Bob never authorized her).
  print_feed("eve");   // Sees only her own.

  // --- Guarantee to users: even developers cannot inspect the data.
  auto peeked = fauxbook.DeveloperPeek("alice");
  std::printf("developer peeks at alice's post: %s\n", peeked.status().ToString().c_str());
  auto forged = fauxbook.DeveloperForgeFriend("alice", "eve");
  std::printf("developer forges friend edge:    %s\n", forged.ToString().c_str());
  auto exfil = fauxbook.TenantExfiltrate("alice", "eve");
  std::printf("tenant exfiltrates to eve:       %s\n", exfil.ToString().c_str());

  // --- Guarantee to the provider: tenant code is sandboxed.
  apps::TenantModule good{"feedgen", {"fauxbook_api"}, {"render()", "getattr(post)"}};
  apps::TenantModule evil{"backdoor", {"os"}, {"__import__(socket)"}};
  std::printf("load whitelisted tenant module:  %s\n",
              fauxbook.LoadTenantCode(good).ToString().c_str());
  std::printf("load module importing 'os':      %s\n",
              fauxbook.LoadTenantCode(evil).ToString().c_str());

  // --- Guarantee to developers: attested CPU shares from live scheduler
  //     state exported via introspection.
  fauxbook.SetTenantWeight("fauxbook", 30);
  auto attested = fauxbook.AttestCpuShare("fauxbook", 50);
  std::printf("attest 50%% CPU share (alone):    %s\n",
              attested.ok() ? "OK (label issued)" : attested.status().ToString().c_str());
  auto other = *nexus.CreateProcess("other-tenant", ToBytes("other"));
  nexus.kernel().scheduler().AddClient(other, 90);
  auto crowded = fauxbook.AttestCpuShare("fauxbook", 50);
  std::printf("attest 50%% after competitor:     %s\n", crowded.status().ToString().c_str());

  // --- The DDRM-constrained NIC driver cannot read packet contents.
  kernel::IpcContext context;
  kernel::IpcMessage read_page = kernel::IpcMessage::Of("read_page");
  read_page.AddU64(0x4000);
  std::printf("driver reads page contents:      %s\n",
              fauxbook.driver_monitor().OnCall(context, read_page) ==
                      kernel::InterposeVerdict::kDeny
                  ? "DENIED by reference monitor"
                  : "allowed (!)");
  return 0;
}
