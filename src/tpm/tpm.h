// Software model of a TPM v1.1/1.2 secure coprocessor.
//
// The paper's architecture uses the TPM through a narrow logical interface:
//   - PCRs, extended with measurements during boot (§3.4),
//   - two Data Integrity Registers (DIRcur/DIRnew) whose access is gated on
//     PCR state — the anchor of the crash-consistent VDIR protocol (§3.3),
//   - seal/unseal of secrets bound to a PCR composite (SRK-rooted),
//   - quotes: signed attestations of the current PCR composite, and
//   - a small amount of NVRAM (v1.2).
//
// This model implements that state machine with real hashing (SHA-1 for the
// PCR/DIR registers, matching the 160-bit TPM registers) and real RSA for
// the endorsement key and quotes. Hardware tamper resistance is out of
// scope: the model enforces the same access rules the chip would.
#ifndef NEXUS_TPM_TPM_H_
#define NEXUS_TPM_TPM_H_

#include <array>
#include <map>
#include <optional>
#include <vector>

#include "crypto/aes.h"
#include "crypto/rsa.h"
#include "crypto/sha1.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/status.h"

namespace nexus::tpm {

inline constexpr int kNumPcrs = 16;
inline constexpr int kNumDirs = 2;  // TPM v1.1: DIRcur and DIRnew.

using PcrValue = crypto::Sha1Digest;

// A PCR composite: the hash of the selected PCR values, used by DIR
// policies, seal blobs, and quotes.
Bytes ComputePcrComposite(const std::vector<PcrValue>& values);

class Tpm {
 public:
  // "Manufactures" a TPM: generates the endorsement key (EK). `key_bits`
  // trades RSA strength for test speed.
  explicit Tpm(Rng& rng, int key_bits = 512);

  // ------------------------------------------------------------- Power
  // Power cycle: PCRs reset to zero; persistent state (EK, owner secret,
  // DIRs, NVRAM, seal blobs remain valid) survives. Increments the boot
  // counter used by the Nexus boot key (NBK).
  void PowerCycle();
  uint64_t boot_counter() const { return boot_counter_; }

  // -------------------------------------------------------------- PCRs
  // Extend: PCR <- SHA1(PCR || measurement_digest).
  Status ExtendPcr(int index, const crypto::Sha1Digest& measurement);
  // Convenience: measure (SHA-1) arbitrary data and extend.
  Status MeasureAndExtend(int index, ByteView data);
  Result<PcrValue> ReadPcr(int index) const;
  // Composite over a selection of PCR indices (sorted, deduplicated).
  Result<Bytes> ReadComposite(const std::vector<int>& indices) const;

  // --------------------------------------------------------- Ownership
  // Takes ownership: generates the storage root key (SRK) and records the
  // current composite over `policy_pcrs` as the access policy for DIRs and
  // sealed data. Fails if already owned.
  Status TakeOwnership(Rng& rng, const std::vector<int>& policy_pcrs);
  bool IsOwned() const { return owned_; }
  // Clears ownership, DIRs, and invalidates previously sealed blobs.
  void ClearOwnership();

  // --------------------------------------------------------------- DIRs
  // DIR access requires ownership AND the current PCR composite to match
  // the ownership-time policy (a modified kernel cannot reach the DIRs).
  Status WriteDir(int index, const crypto::Sha1Digest& value);
  Result<crypto::Sha1Digest> ReadDir(int index) const;

  // -------------------------------------------------------- Seal/Unseal
  // Seals `data` so it can only be unsealed when the composite over `pcrs`
  // matches its value at seal time. The blob is encrypted and integrity
  // protected under the SRK.
  Result<Bytes> Seal(ByteView data, const std::vector<int>& pcrs) const;
  Result<Bytes> Unseal(ByteView blob) const;

  // -------------------------------------------------------------- Quote
  // Signs (nonce || composite over `pcrs`) with the EK. (Real deployments
  // use an AIK via a privacy CA — §3.4 notes Nexus privacy authorities; the
  // model signs with the EK directly.)
  Result<Bytes> Quote(ByteView nonce, const std::vector<int>& pcrs) const;
  const crypto::RsaPublicKey& endorsement_public_key() const { return ek_.public_key; }
  // Verifies a quote produced by `Quote` against an expected composite.
  static bool VerifyQuote(const crypto::RsaPublicKey& ek, ByteView nonce,
                          ByteView expected_composite, ByteView signature);

  // Signs arbitrary data under the EK (used to certify the Nexus kernel key
  // at first boot). Requires ownership.
  Result<Bytes> SignWithEk(ByteView data) const;

  // -------------------------------------------------------------- NVRAM
  // TPM v1.2-style NVRAM: define once, then read/write. If `pcr_bound`,
  // access is gated on the ownership policy composite like DIRs.
  Status NvDefine(uint32_t index, size_t size, bool pcr_bound);
  Status NvWrite(uint32_t index, ByteView data);
  Result<Bytes> NvRead(uint32_t index) const;

 private:
  struct NvRegion {
    Bytes data;
    bool pcr_bound = false;
  };

  bool PolicySatisfied() const;
  crypto::AesKey SealKey() const;

  crypto::RsaKeyPair ek_;
  std::array<PcrValue, kNumPcrs> pcrs_{};
  std::array<crypto::Sha1Digest, kNumDirs> dirs_{};
  bool owned_ = false;
  Bytes srk_secret_;             // Symmetric stand-in for the RSA SRK.
  std::vector<int> policy_pcrs_;
  Bytes policy_composite_;
  std::map<uint32_t, NvRegion> nvram_;
  uint64_t boot_counter_ = 0;
};

}  // namespace nexus::tpm

#endif  // NEXUS_TPM_TPM_H_
