#include "core/engine.h"

#include <algorithm>

#include "nal/parser.h"

namespace nexus::core {

using kernel::AuthzDecision;
using kernel::AuthzRequest;

namespace {

// Policy-plane mutation record for the global MutationLog. Stamped with
// the mutated subregion's per-shard decision-cache generations as reported
// by the invalidation itself — the EXACT post-bump values, read under the
// bump's lock, so the auditor can place each mutation precisely on the
// generation axis (an after-the-fact SubregionGenerations read would race
// other threads' bumps and overshoot). kSay mutations carry no
// generations: labels are append-only and never invalidate verdicts.
void LogMutation(kernel::MutationKind kind, kernel::ProcessId subject, kernel::OpId op,
                 kernel::ObjectId obj, uint64_t detail,
                 std::vector<uint64_t> generations) {
  kernel::MutationLog& log = kernel::MutationLog::Global();
  if (!log.enabled()) {
    return;
  }
  kernel::MutationRecord record;
  record.kind = kind;
  record.subject = subject;
  record.op = op;
  record.obj = obj;
  record.detail = detail;
  record.generations = std::move(generations);
  log.Append(std::move(record));
}

// Generation stamp for a single-entry (proof) invalidation: only the
// subject's shard was bumped, and only that shard's stamp must be exact
// (it is `post_gen`, read under the bump's lock). The other shards' slots
// are a best-effort snapshot — the auditor only consults the shard a
// verdict actually ran in, which for this tuple is the subject's shard.
std::vector<uint64_t> ProofMutationGens(kernel::Kernel* kernel,
                                        const kernel::AuthzRequest& tuple,
                                        uint64_t post_gen) {
  std::vector<uint64_t> gens =
      kernel->decision_cache().SubregionGenerations(tuple.op, tuple.obj);
  size_t shard = kernel->decision_cache().ShardOf(tuple.subject);
  if (shard < gens.size()) {
    gens[shard] = post_gen;
  }
  return gens;
}

// Stage event for a traced request reaching the engine (a decision-cache
// miss) or leaving it for a designated guard. No-op when untraced.
void EmitEngineEvent(const AuthzRequest& request, kernel::TraceStage stage, uint64_t aux,
                     uint16_t flags) {
  kernel::FlightRecorder& recorder = kernel::FlightRecorder::Global();
  if (!recorder.enabled()) {
    return;
  }
  uint64_t id = request.trace != 0 ? request.trace : kernel::CurrentTraceId();
  if (id == 0) {
    return;
  }
  kernel::TraceEvent e;
  e.trace_id = id;
  e.subject = request.subject;
  e.op = request.op;
  e.obj = request.obj;
  e.aux = aux;
  e.flags = flags;
  e.stage = stage;
  recorder.Emit(e);
}

}  // namespace

Engine::Engine(kernel::Kernel* kernel, Guard* default_guard)
    : kernel_(kernel), default_guard_(default_guard) {}

AuthzDecision Engine::DefaultPolicy(const AuthzRequest& request) {
  default_policy_->Increment();
  // Unregistered objects (ambient resources like the bare syscall object)
  // are unguarded until someone registers or sets a goal on them.
  if (!objects_.Known(request.obj)) {
    return AuthzDecision::Allow();
  }
  // A nascent object with no goal is satisfiable only by the object's owner
  // or the resource manager that created it (its superprincipal).
  std::optional<kernel::ProcessId> owner = objects_.Owner(request.obj);
  std::optional<kernel::ProcessId> manager = objects_.Manager(request.obj);
  if (request.subject == kernel::kKernelProcessId ||
      (owner.has_value() && request.subject == *owner) ||
      (manager.has_value() && request.subject == *manager)) {
    return AuthzDecision::Allow();
  }
  return AuthzDecision::Deny(
      PermissionDenied("bootstrap policy: only the owner or resource manager may access " +
                       std::string(request.object())),
      true);
}

AuthzDecision Engine::UpcallDesignatedGuard(const AuthzRequest& request,
                                            const GoalEntry& goal, const nal::Proof& proof,
                                            const std::vector<nal::Formula>& credentials) {
  // Guard processes are user-level servers written to the one-Handle-at-a-
  // time contract; concurrent misses hitting designated goals must not run
  // their handlers in parallel. Recursive: a designated guard may re-enter
  // authorization that lands on another designated goal on this thread.
  // (No other engine lock is held here, so re-entrant Say/SetProof from
  // the guard process still work.)
  std::lock_guard<std::recursive_mutex> serialize(designated_mu_);
  designated_upcalls_->Increment();
  EmitEngineEvent(request, kernel::TraceStage::kGuardUpcall, goal.guard_port,
                  kernel::kTraceFlagUpcall);
  // Typed v2 upcall: subject/op/obj cross as id slots (no stringify), the
  // proof as serialized text (it is a subject-supplied tree), credentials
  // newline-separated in data. The proof slot inherits the ABI's 64 KiB
  // per-slot bound, enforced identically with interposition on or off
  // (ValidateWireBounds) — a deeper proof must be pre-registered via
  // SetProof and referenced, not shipped inline per call.
  static const kernel::OpId check_op = kernel::InternOp("check");
  kernel::IpcMessage ipc_request = kernel::IpcMessage::Of(check_op);
  ipc_request.AddProcess(request.subject)
      .AddU64(request.op)
      .AddObject(request.obj)
      .AddString(proof == nullptr ? "(premise \"false\")" : nal::SerializeProof(proof));
  std::string blob;
  for (const nal::Formula& cred : credentials) {
    blob += cred->ToString();
    blob += '\n';
  }
  ipc_request.data = ToBytes(blob);
  kernel::IpcReply reply = kernel_->Call(request.subject, goal.guard_port, ipc_request);
  return AuthzDecision::FromStatus(reply.status, reply.value() == 1);
}

AuthzDecision Engine::Authorize(const AuthzRequest& request) {
  misses_->Increment();
  EmitEngineEvent(request, kernel::TraceStage::kEngineMiss, 0, 0);
  std::optional<GoalEntry> goal = goals_.Get(request.op, request.obj);
  if (!goal.has_value()) {
    return DefaultPolicy(request);
  }

  // Snapshot the miss inputs under the reader side of the state plane:
  // the pre-submitted proof, the credential set, and the version stamp.
  // All are shared_ptr copies of immutable trees, safe to evaluate after
  // the lock is gone.
  TupleKey key = KeyOf(request);
  nal::Proof proof;
  std::vector<nal::Formula> credentials;
  uint64_t state_version;
  {
    std::shared_lock<std::shared_mutex> lock(state_mu_);
    auto proof_it = proofs_.find(key);
    proof = proof_it == proofs_.end() ? nullptr : proof_it->second;
    AppendSubjectCredentialsLocked(request.subject, &credentials);
    AppendObjectCredentialsLocked(request.obj, &credentials);
    state_version = StateVersionLocked(request.subject, request.obj, key);
  }

  if (goal->guard_port != 0) {
    // Arbitrary guard-process code: no engine lock may be held.
    return UpcallDesignatedGuard(request, *goal, proof, credentials);
  }

  // Guard evaluation — including any remote-authority round trips — runs
  // under only the subject's stripe, so independent subjects' misses
  // overlap end to end.
  std::lock_guard<std::recursive_mutex> stripe(stripes_[StripeOf(request.subject)]);
  return default_guard_->Check(request, goal->goal, proof, credentials, state_version,
                               goal->goal_id);
}

std::vector<AuthzDecision> Engine::AuthorizeBatch(std::span<const AuthzRequest> requests) {
  misses_->Increment(requests.size());
  std::vector<AuthzDecision> decisions(requests.size());

  // The batch is processed in SEGMENTS bounded by designated-guard items:
  // snapshot a segment under the reader lock, evaluate it under the
  // segment subjects' stripes, then run the designated upcall (which may
  // mutate label state) with no lock held, so everything after it
  // re-snapshots and observes the mutation exactly as the serial path
  // would.
  size_t i = 0;
  while (i < requests.size()) {
    std::vector<Guard::BatchItem> guard_items;
    std::vector<size_t> guard_slots;
    bool have_designated = false;
    size_t designated_slot = 0;
    GoalEntry designated_goal;
    nal::Proof designated_proof;
    std::vector<nal::Formula> designated_credentials;

    {
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      // Credential amortization: the subject-store + system-store prefix
      // is identical for every request by one subject; collect it once per
      // segment and only append per-object auxiliary labels.
      std::map<kernel::ProcessId, std::vector<nal::Formula>> base_credentials;
      for (; i < requests.size(); ++i) {
        const AuthzRequest& request = requests[i];
        std::optional<GoalEntry> goal = goals_.Get(request.op, request.obj);
        if (!goal.has_value()) {
          decisions[i] = DefaultPolicy(request);
          continue;
        }

        TupleKey key = KeyOf(request);
        auto proof_it = proofs_.find(key);
        nal::Proof proof = proof_it == proofs_.end() ? nullptr : proof_it->second;

        auto base = base_credentials.find(request.subject);
        if (base == base_credentials.end()) {
          std::vector<nal::Formula> creds;
          AppendSubjectCredentialsLocked(request.subject, &creds);
          base = base_credentials.emplace(request.subject, std::move(creds)).first;
        }
        std::vector<nal::Formula> credentials = base->second;
        AppendObjectCredentialsLocked(request.obj, &credentials);

        if (goal->guard_port != 0) {
          // End of segment: evaluate everything snapshotted so far first,
          // then upcall. The credential memo dies with the segment.
          have_designated = true;
          designated_slot = i;
          designated_goal = *goal;
          designated_proof = std::move(proof);
          designated_credentials = std::move(credentials);
          ++i;
          break;
        }

        guard_items.push_back(
            Guard::BatchItem{request, goal->goal, goal->goal_id, std::move(proof),
                             std::move(credentials),
                             StateVersionLocked(request.subject, request.obj, key)});
        guard_slots.push_back(i);
      }
    }

    if (!guard_items.empty()) {
      // Acquire every involved subject's stripe in ascending index order —
      // a canonical order, so concurrent batches never deadlock — and
      // evaluate the segment. Remote round trips inside CheckBatch overlap
      // across peers; other subjects' single misses overlap with this
      // batch unless their stripe is involved.
      std::vector<size_t> stripe_indices;
      stripe_indices.reserve(guard_items.size());
      for (const Guard::BatchItem& item : guard_items) {
        stripe_indices.push_back(StripeOf(item.request.subject));
      }
      std::sort(stripe_indices.begin(), stripe_indices.end());
      stripe_indices.erase(std::unique(stripe_indices.begin(), stripe_indices.end()),
                           stripe_indices.end());
      for (size_t s : stripe_indices) {
        stripes_[s].lock();
      }
      std::vector<AuthzDecision> guard_decisions = default_guard_->CheckBatch(guard_items);
      for (auto it = stripe_indices.rbegin(); it != stripe_indices.rend(); ++it) {
        stripes_[*it].unlock();
      }
      for (size_t j = 0; j < guard_slots.size(); ++j) {
        decisions[guard_slots[j]] = std::move(guard_decisions[j]);
      }
    }

    if (have_designated) {
      decisions[designated_slot] = UpcallDesignatedGuard(
          requests[designated_slot], designated_goal, designated_proof,
          designated_credentials);
    }
  }
  return decisions;
}

uint64_t Engine::StateVersionLocked(kernel::ProcessId subject, kernel::ObjectId object,
                                    const TupleKey& proof_key) const {
  uint64_t version = 1 + system_store_.version();
  auto store = stores_.find(subject);
  if (store != stores_.end()) {
    version += store->second.version();
  }
  auto extras = object_labels_.find(object);
  if (extras != object_labels_.end()) {
    version += extras->second.size();
  }
  auto proof_version = proof_versions_.find(proof_key);
  if (proof_version != proof_versions_.end()) {
    version += proof_version->second;
  }
  return version;
}

Result<LabelHandle> Engine::Say(kernel::ProcessId speaker, const std::string& statement_text) {
  Result<nal::Formula> statement = nal::ParseFormula(statement_text);
  if (!statement.ok()) {
    return statement.status();
  }
  return SayFormula(speaker, *statement);
}

Result<LabelHandle> Engine::SayFormula(kernel::ProcessId speaker,
                                       const nal::Formula& statement) {
  if (!kernel_->IsAlive(speaker)) {
    return NotFound("speaker process not alive");
  }
  if (!nal::IsGround(statement)) {
    return InvalidArgument("labels must be ground formulas");
  }
  // The speaker is, by construction, the calling process's principal: the
  // secure syscall channel substitutes for a signature (§2.3).
  Result<LabelHandle> handle = [&] {
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    return stores_[speaker].Insert(kernel_->ProcessPrincipal(speaker), statement);
  }();
  if (handle.ok()) {
    LogMutation(kernel::MutationKind::kSay, speaker, 0, 0,
                nal::Interner::Global().Intern(statement), {});
  }
  return handle;
}

LabelHandle Engine::SayAs(const nal::Principal& speaker, const nal::Formula& statement) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  return system_store_.Insert(speaker, statement);
}

void Engine::AddObjectLabel(kernel::ObjectId object, const nal::Formula& label) {
  std::unique_lock<std::shared_mutex> lock(state_mu_);
  object_labels_[object].push_back(label);
}

Status Engine::SetGoal(kernel::ProcessId caller, kernel::OpId op, kernel::ObjectId obj,
                       nal::Formula goal, kernel::PortId guard_port) {
  // setgoal is itself an authorized operation on the object (§2.5). It is
  // governed by the goal for ("setgoal", object) if present, else the
  // bootstrap policy. The check runs BEFORE any engine lock is taken: it
  // re-enters authorization through the kernel (and may run a designated
  // guard), which under the old monitor needed a recursive mutex.
  static const kernel::OpId setgoal_op = kernel::InternOp("setgoal");
  Status authorized = kernel_->Authorize(AuthzRequest{caller, setgoal_op, obj});
  if (!authorized.ok()) {
    return authorized;
  }
  NEXUS_RETURN_IF_ERROR(goals_.SetGoal(op, obj, std::move(goal), guard_port));
  // A goal update may invalidate many cached decisions: clear the (op,
  // object) subregion (§2.8). Mutation first, then the generation bump —
  // a miss that snapshotted in between is dropped by the kernel's
  // generation-checked insert.
  const bool log_on = kernel::MutationLog::Global().enabled();
  std::vector<uint64_t> post_gens;
  kernel_->OnGoalUpdate(op, obj, log_on ? &post_gens : nullptr);
  if (log_on) {
    // Re-probe for the installed goal's interned id (the store interns on
    // SetGoal); only paid when the log is on. Concurrent SetGoals on ONE
    // (op, obj) must be externally serialized for the log to reflect
    // install order — the auditor documents the same requirement.
    std::optional<GoalEntry> installed = goals_.Get(op, obj);
    LogMutation(kernel::MutationKind::kSetGoal, caller, op, obj,
                installed.has_value() ? installed->goal_id : 0, std::move(post_gens));
  }
  return OkStatus();
}

Status Engine::SetGoal(kernel::ProcessId caller, const std::string& operation,
                       const std::string& object, nal::Formula goal,
                       kernel::PortId guard_port) {
  NEXUS_RETURN_IF_ERROR(ValidateAuthzName(operation, "operation"));
  NEXUS_RETURN_IF_ERROR(ValidateAuthzName(object, "object"));
  return SetGoal(caller, kernel::InternOp(operation), kernel::InternObject(object),
                 std::move(goal), guard_port);
}

Status Engine::ClearGoal(kernel::ProcessId caller, kernel::OpId op, kernel::ObjectId obj) {
  static const kernel::OpId setgoal_op = kernel::InternOp("setgoal");
  Status authorized = kernel_->Authorize(AuthzRequest{caller, setgoal_op, obj});
  if (!authorized.ok()) {
    return authorized;
  }
  NEXUS_RETURN_IF_ERROR(goals_.ClearGoal(op, obj));
  const bool log_on = kernel::MutationLog::Global().enabled();
  std::vector<uint64_t> post_gens;
  kernel_->OnGoalUpdate(op, obj, log_on ? &post_gens : nullptr);
  if (log_on) {
    LogMutation(kernel::MutationKind::kClearGoal, caller, op, obj, 0,
                std::move(post_gens));
  }
  return OkStatus();
}

Status Engine::ClearGoal(kernel::ProcessId caller, const std::string& operation,
                         const std::string& object) {
  // Never-interned names cannot name a goal; don't grow the tables just to
  // return NotFound.
  std::optional<kernel::OpId> op = kernel::FindOp(operation);
  std::optional<kernel::ObjectId> obj = kernel::FindObject(object);
  if (!op.has_value() || !obj.has_value()) {
    return NotFound("no goal for " + operation + " on " + object);
  }
  return ClearGoal(caller, *op, *obj);
}

Status Engine::SetProof(const AuthzRequest& tuple, nal::Proof proof) {
  if (proof == nullptr) {
    return InvalidArgument("null proof");
  }
  TupleKey key = KeyOf(tuple);
  {
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    proofs_[key] = std::move(proof);
    ++proof_versions_[key];
  }
  // A proof update invalidates the single affected cache entry (§2.8);
  // mutation first, then the generation bump (see SetGoal).
  const bool log_on = kernel::MutationLog::Global().enabled();
  uint64_t post_gen = 0;
  kernel_->OnProofUpdate(tuple, log_on ? &post_gen : nullptr);
  if (log_on) {
    LogMutation(kernel::MutationKind::kSetProof, tuple.subject, tuple.op, tuple.obj, 0,
                ProofMutationGens(kernel_, tuple, post_gen));
  }
  return OkStatus();
}

Status Engine::SetProof(kernel::ProcessId subject, const std::string& operation,
                        const std::string& object, nal::Proof proof) {
  NEXUS_RETURN_IF_ERROR(ValidateAuthzName(operation, "operation"));
  NEXUS_RETURN_IF_ERROR(ValidateAuthzName(object, "object"));
  return SetProof(AuthzRequest::Of(subject, operation, object), std::move(proof));
}

Status Engine::ClearProof(const AuthzRequest& tuple) {
  TupleKey key = KeyOf(tuple);
  {
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    if (proofs_.erase(key) == 0) {
      return NotFound("no proof for this tuple");
    }
    ++proof_versions_[key];
  }
  const bool log_on = kernel::MutationLog::Global().enabled();
  uint64_t post_gen = 0;
  kernel_->OnProofUpdate(tuple, log_on ? &post_gen : nullptr);
  if (log_on) {
    LogMutation(kernel::MutationKind::kClearProof, tuple.subject, tuple.op, tuple.obj, 0,
                ProofMutationGens(kernel_, tuple, post_gen));
  }
  return OkStatus();
}

Status Engine::ClearProof(kernel::ProcessId subject, const std::string& operation,
                          const std::string& object) {
  std::optional<kernel::OpId> op = kernel::FindOp(operation);
  std::optional<kernel::ObjectId> obj = kernel::FindObject(object);
  if (!op.has_value() || !obj.has_value()) {
    return NotFound("no proof for this tuple");
  }
  return ClearProof(AuthzRequest{subject, *op, *obj});
}

Status Engine::RegisterObject(kernel::ObjectId object, kernel::ProcessId owner,
                              kernel::ProcessId manager) {
  return objects_.Register(object, owner, manager);
}

Status Engine::RegisterObject(const std::string& object, kernel::ProcessId owner,
                              kernel::ProcessId manager) {
  return objects_.Register(object, owner, manager);
}

Status Engine::TransferOwnership(kernel::ProcessId caller, const std::string& object,
                                 kernel::ProcessId new_owner) {
  std::optional<kernel::ProcessId> owner = objects_.Owner(object);
  std::optional<kernel::ProcessId> manager = objects_.Manager(object);
  bool caller_may = caller == kernel::kKernelProcessId ||
                    (owner.has_value() && caller == *owner) ||
                    (manager.has_value() && caller == *manager);
  if (!caller_may) {
    return PermissionDenied("only the owner or resource manager may transfer ownership");
  }
  NEXUS_RETURN_IF_ERROR(objects_.TransferOwnership(object, new_owner));
  // The manager documents the transfer with a label:
  //   manager says new-owner speaksfor object (§2.6).
  nal::Principal object_principal =
      kernel_->ProcessPrincipal(manager.value_or(kernel::kKernelProcessId)).Sub(object);
  SayAs(kernel_->ProcessPrincipal(manager.value_or(kernel::kKernelProcessId)),
        nal::FormulaNode::SpeaksFor(kernel_->ProcessPrincipal(new_owner), object_principal));
  return OkStatus();
}

void Engine::AppendSubjectCredentialsLocked(kernel::ProcessId subject,
                                            std::vector<nal::Formula>* out) const {
  auto subject_store = stores_.find(subject);
  if (subject_store != stores_.end()) {
    for (const nal::Formula& f : subject_store->second.All()) {
      out->push_back(f);
    }
  }
  for (const nal::Formula& f : system_store_.All()) {
    out->push_back(f);
  }
}

void Engine::AppendObjectCredentialsLocked(kernel::ObjectId object,
                                           std::vector<nal::Formula>* out) const {
  auto object_extras = object_labels_.find(object);
  if (object_extras != object_labels_.end()) {
    for (const nal::Formula& f : object_extras->second) {
      out->push_back(f);
    }
  }
}

std::vector<nal::Formula> Engine::CollectCredentials(kernel::ProcessId subject,
                                                     kernel::ObjectId object) const {
  std::shared_lock<std::shared_mutex> lock(state_mu_);
  std::vector<nal::Formula> credentials;
  AppendSubjectCredentialsLocked(subject, &credentials);
  AppendObjectCredentialsLocked(object, &credentials);
  return credentials;
}

}  // namespace nexus::core
