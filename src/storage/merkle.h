// Merkle hash tree (§3.3).
//
// Divides a region into fixed-size blocks whose hashes form the leaves of a
// binary tree; inner nodes hash the concatenation of their children. The
// single root hash protects the whole region while decoupling update and
// verification cost from region size: updating one block rehashes one
// root-to-leaf path, and a block can be verified against the root with a
// logarithmic sibling path (enabling demand paging of SSR contents).
#ifndef NEXUS_STORAGE_MERKLE_H_
#define NEXUS_STORAGE_MERKLE_H_

#include <vector>

#include "crypto/sha256.h"
#include "util/bytes.h"
#include "util/status.h"

namespace nexus::storage {

using MerkleHash = crypto::Sha256Digest;

class MerkleTree {
 public:
  // An empty tree over zero leaves.
  MerkleTree();
  // Builds from per-leaf hashes.
  explicit MerkleTree(const std::vector<MerkleHash>& leaf_hashes);

  static MerkleHash HashLeaf(ByteView block);

  size_t leaf_count() const { return leaf_count_; }
  MerkleHash root() const;

  // Grows the tree to `count` leaves (new leaves take the empty-block
  // hash). Shrinking is not supported.
  Status ResizeLeaves(size_t count);

  // Replaces one leaf hash and rehashes its path to the root: O(log n).
  Status UpdateLeaf(size_t index, const MerkleHash& leaf_hash);
  Result<MerkleHash> LeafHash(size_t index) const;

  // Sibling path from leaf `index` to the root (for remote verification).
  Result<std::vector<MerkleHash>> AuthPath(size_t index) const;

  // Verifies that `leaf_hash` at `index` is consistent with `root` given a
  // sibling path for a tree of `leaf_count` leaves.
  static bool VerifyPath(const MerkleHash& root, size_t index, const MerkleHash& leaf_hash,
                         const std::vector<MerkleHash>& path, size_t leaf_count);

  // All leaf hashes (persisted as SSR metadata and rebuilt at boot).
  std::vector<MerkleHash> LeafHashes() const;

 private:
  static MerkleHash HashPair(const MerkleHash& l, const MerkleHash& r);
  static size_t Pow2AtLeast(size_t n);
  void Rebuild();

  size_t leaf_count_ = 0;
  size_t capacity_ = 0;            // Power of two >= leaf_count_.
  std::vector<MerkleHash> nodes_;  // Heap layout: nodes_[1] is the root.
};

}  // namespace nexus::storage

#endif  // NEXUS_STORAGE_MERKLE_H_
