#include "net/remote_authority.h"

#include "nal/parser.h"

namespace nexus::net {

AuthorityService::AuthorityService(NetNode* node) : node_(node) {
  node_->RegisterService(std::string(kServiceName), this);
}

Result<Bytes> AuthorityService::Handle(AttestedChannel& channel, ByteView request) {
  (void)channel;
  ++queries_served_;
  Result<nal::Formula> statement = nal::ParseFormula(ToString(request));
  Bytes reply(1, 0);  // Default: deny.
  if (!statement.ok()) {
    return reply;
  }
  for (core::Authority* authority : authorities_) {
    if (authority->Handles(*statement)) {
      reply[0] = authority->Vouches(*statement) ? 1 : 0;
      break;
    }
  }
  return reply;
}

RemoteAuthority::RemoteAuthority(NetNode* node, NodeId peer, HandlesPredicate handles,
                                 uint64_t default_timeout_us)
    : node_(node),
      peer_(std::move(peer)),
      handles_(std::move(handles)),
      default_timeout_us_(default_timeout_us) {}

bool RemoteAuthority::Handles(const nal::Formula& statement) const {
  return handles_ == nullptr || handles_(statement);
}

bool RemoteAuthority::Vouches(const nal::Formula& statement) {
  return VouchesWithin(statement, default_timeout_us_);
}

bool RemoteAuthority::VouchesWithin(const nal::Formula& statement, uint64_t timeout_us) {
  ++stats_.queries;
  Result<AttestedChannel*> channel = node_->Connect(peer_);
  if (!channel.ok()) {
    ++stats_.denied_unreachable;
    return false;  // Unreachable or untrusted peer: fail closed.
  }
  Result<Bytes> answer = (*channel)->Call(std::string(AuthorityService::kServiceName),
                                          ToBytes(statement->ToString()), timeout_us);
  if (!answer.ok()) {
    ++stats_.denied_unreachable;
    return false;  // Lost or late: the deadline IS the answer (deny).
  }
  bool vouched = !answer->empty() && (*answer)[0] == 1;
  ++(vouched ? stats_.vouched : stats_.denied);
  return vouched;
}

}  // namespace nexus::net
