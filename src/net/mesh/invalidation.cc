#include "net/mesh/invalidation.h"

#include <algorithm>

#include "kernel/trace.h"

namespace nexus::net::mesh {

InvalidationPropagator::InvalidationPropagator(NetNode* node, MeshRegistry* registry,
                                              Options options)
    : node_(node), registry_(registry), options_(options) {
  node_->RegisterService(std::string(kServiceName), this);
}

void InvalidationPropagator::AttachKernel(kernel::Kernel* kernel) {
  kernel->set_invalidation_sink(
      [this](kernel::OpId op, kernel::ObjectId obj) { Broadcast(op, obj); });
}

void InvalidationPropagator::DetachKernel(kernel::Kernel* kernel) {
  kernel->set_invalidation_sink(nullptr);
}

Bytes InvalidationPropagator::SerializeRecord(const OutboundRecord& record) const {
  Bytes out;
  AppendLengthPrefixed(out, ToBytes(node_->id()));
  AppendU64(out, record.epoch);
  AppendLengthPrefixed(out, ToBytes(record.op_name));
  AppendLengthPrefixed(out, ToBytes(record.obj_name));
  return out;
}

size_t InvalidationPropagator::SendToPeers(const Bytes& payload) {
  size_t sent = 0;
  for (const PeerRecord& record : registry_->Peers()) {
    if (record.name == node_->id()) {
      continue;
    }
    AttestedChannel* channel = node_->ChannelTo(record.name);
    if (channel == nullptr || !channel->established()) {
      continue;  // A partitioned/unknown peer catches up via ResendRecent.
    }
    if (channel->SendSecure(std::string(kServiceName), payload).ok()) {
      ++sent;
    }
  }
  return sent;
}

void InvalidationPropagator::Broadcast(kernel::OpId op, kernel::ObjectId obj) {
  OutboundRecord record;
  record.epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  record.op_name = std::string(kernel::OpName(op));
  record.obj_name = std::string(kernel::ObjectName(obj));
  Bytes payload = SerializeRecord(record);
  {
    std::lock_guard<std::mutex> lock(mu_);
    outbound_.push_back(record);
    while (outbound_.size() > options_.resend_log) {
      outbound_.pop_front();
    }
    ++stats_.broadcasts;
  }
  size_t sent = SendToPeers(payload);
  if (sent > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.sends += sent;
  }
}

size_t InvalidationPropagator::ResendRecent() {
  std::vector<OutboundRecord> records;
  {
    std::lock_guard<std::mutex> lock(mu_);
    records.assign(outbound_.begin(), outbound_.end());
  }
  size_t sent = 0;
  for (const OutboundRecord& record : records) {
    sent += SendToPeers(SerializeRecord(record));
  }
  if (sent > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.sends += sent;
  }
  return sent;
}

Result<Bytes> InvalidationPropagator::Handle(AttestedChannel& channel, ByteView request) {
  ByteReader reader(request);
  Result<Bytes> origin = reader.ReadLengthPrefixed();
  Result<uint64_t> epoch = reader.ReadU64();
  Result<Bytes> op_name = reader.ReadLengthPrefixed();
  Result<Bytes> obj_name = reader.ReadLengthPrefixed();
  if (!origin.ok() || !epoch.ok() || !op_name.ok() || !obj_name.ok() ||
      !reader.AtEnd() || *epoch == 0) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return Bytes{};
  }
  // First-hand only: the claimed origin must BE the attested peer on the
  // delivering channel. Invalidations are never relayed, so an accepted
  // epoch is authenticated end to end by the channel itself.
  if (ToString(*origin) != channel.peer_node()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    return Bytes{};
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    OriginState& state = origins_[channel.peer_node()];
    uint64_t window_floor =
        state.max_seen > options_.replay_window ? state.max_seen - options_.replay_window : 0;
    if (*epoch <= window_floor || !state.seen.insert(*epoch).second) {
      ++stats_.duplicates;  // Exact-once: the re-apply is a no-op.
      return Bytes{};
    }
    state.max_seen = std::max(state.max_seen, *epoch);
    while (!state.seen.empty() &&
           *state.seen.begin() + options_.replay_window < state.max_seen) {
      state.seen.erase(state.seen.begin());
    }
    ++stats_.applied;
  }
  // Fresh epoch: retire our cached verdicts for the pair. Reordering is
  // harmless — a bump is a bump, whichever epoch lands first.
  kernel::OpId op = kernel::InternOp(ToString(*op_name));
  kernel::ObjectId obj = kernel::InternObject(ToString(*obj_name));
  std::vector<uint64_t> post_gens;
  node_->nexus().kernel().decision_cache().InvalidateSubregion(op, obj, &post_gens);
  if (options_.stamp_observability) {
    // Mutation record FIRST, then the trace event: the auditor drains
    // mutations before events each harvest, so an event it sees can join
    // the record that stamped its generations.
    kernel::MutationLog& log = kernel::MutationLog::Global();
    if (log.enabled()) {
      kernel::MutationRecord record;
      record.kind = kernel::MutationKind::kRemoteInvalidate;
      record.op = op;
      record.obj = obj;
      record.detail = *epoch;
      record.generations = post_gens;
      log.Append(record);
    }
    kernel::FlightRecorder& recorder = kernel::FlightRecorder::Global();
    if (recorder.enabled()) {
      kernel::TraceScope scope;  // Fresh id if the thread is untraced.
      kernel::TraceEvent event;
      event.trace_id = scope.id();
      event.op = op;
      event.obj = obj;
      event.aux = *epoch;
      event.flags = kernel::kTraceFlagRemote;
      event.stage = kernel::TraceStage::kRemoteInvalidate;
      event.generation =
          post_gens.empty() ? 0 : *std::max_element(post_gens.begin(), post_gens.end());
      recorder.Emit(event);
    }
  }
  return Bytes{};  // One-way deliveries never send a reply.
}

uint64_t InvalidationPropagator::AppliedEpoch(const NodeId& origin) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = origins_.find(origin);
  return it == origins_.end() ? 0 : it->second.max_seen;
}

InvalidationPropagator::Stats InvalidationPropagator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace nexus::net::mesh
