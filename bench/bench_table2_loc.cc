// Table 2: lines of code per component (the TCB-size inventory).
//
// Regenerates the paper's component table from this repository: counts
// non-blank, non-comment-only lines per module, marks the optional
// components, and totals the TCB the way the paper does (kernel-side
// components minus optional ones).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "util/metrics.h"

#ifndef NEXUS_SOURCE_DIR
#define NEXUS_SOURCE_DIR "."
#endif

namespace {

namespace fs = std::filesystem;

int CountLines(const fs::path& file) {
  std::ifstream in(file);
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    size_t begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) {
      continue;  // Blank.
    }
    if (line.compare(begin, 2, "//") == 0) {
      continue;  // Comment-only.
    }
    ++count;
  }
  return count;
}

int CountDirectory(const fs::path& dir) {
  int total = 0;
  if (!fs::exists(dir)) {
    return 0;
  }
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::string ext = entry.path().extension().string();
    if (ext == ".cc" || ext == ".h") {
      total += CountLines(entry.path());
    }
  }
  return total;
}

}  // namespace

int main() {
  const fs::path root = NEXUS_SOURCE_DIR;

  struct Component {
    std::string name;
    fs::path dir;
    bool optional;  // The paper marks non-TCB components with a dagger.
    bool in_tcb;
  };
  std::vector<Component> components = {
      {"kernel core (processes, IPC, syscalls)", root / "src/kernel", false, true},
      {"logical attestation core (labels/goals/guards)", root / "src/core", false, true},
      {"NAL logic (parser, proofs, checker)", root / "src/nal", false, true},
      {"TPM model", root / "src/tpm", false, true},
      {"attested storage (VDIR/VKEY/SSR)", root / "src/storage", false, true},
      {"crypto (SHA/AES/RSA)", root / "src/crypto", false, true},
      {"util", root / "src/util", false, true},
      {"system services (analyzer/DDRM/cobufs)", root / "src/services", true, false},
      {"applications (Fauxbook et al.)", root / "src/apps", true, false},
      {"tests", root / "tests", true, false},
      {"benchmarks", root / "bench", true, false},
      {"examples", root / "examples", true, false},
  };

  std::cout << "Table 2: Lines of Code (regenerated from this repository)\n";
  std::cout << "----------------------------------------------------------------\n";
  int tcb = 0;
  int grand = 0;
  for (const Component& c : components) {
    int lines = CountDirectory(c.dir);
    grand += lines;
    if (c.in_tcb) {
      tcb += lines;
    }
    std::cout << (c.optional ? "  † " : "    ") << c.name;
    for (size_t pad = c.name.size(); pad < 52; ++pad) {
      std::cout << ' ';
    }
    std::cout << lines << "\n";
  }
  std::cout << "----------------------------------------------------------------\n";
  std::cout << "    TCB total (non-optional components)             " << tcb << "\n";
  std::cout << "    repository total                                " << grand << "\n";
  std::cout << "† optional: outside the trusted computing base.\n";
  nexus::metrics::DumpRegistryToEnvPath();
  return 0;
}
