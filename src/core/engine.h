// The authorization engine: the core-layer half of Figure 1.
//
// Implements the kernel's AuthorizationEngine upcall interface. On a
// decision-cache miss the kernel lands here; the engine locates the goal
// formula, assembles the subject's credentials (its labelstore, the system
// labelstore, and object-scoped auxiliary labels), retrieves the proof the
// subject pre-submitted for this access-control tuple, and dispatches to
// the designated guard — the kernel-designated default guard for kernel
// resources, or any guard process the goal names (§2.5, §2.6).
//
// The engine is identity-based end to end: access-control tuples are
// (ProcessId, OpId, ObjectId) — interned integers, no string keys — and the
// batched entry point AuthorizeBatch amortizes credential collection per
// subject and lets the guard collapse duplicate authority consultations
// across the batch. The string-taking control-plane calls (setgoal,
// setproof, object registration) intern-and-forward, rejecting names that
// would have been ambiguous under the legacy "\x1f"-joined string keys.
#ifndef NEXUS_CORE_ENGINE_H_
#define NEXUS_CORE_ENGINE_H_

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "core/goalstore.h"
#include "core/guard.h"
#include "core/labelstore.h"
#include "kernel/kernel.h"
#include "nal/proof.h"

namespace nexus::core {

// Threading: the engine is a READ-WRITE SPLIT, PER-SUBJECT STRIPED core —
// the PR-3 monitor (one recursive mutex across every entry point, which
// serialized all cache misses) is gone. Two locking planes replace it:
//
//  - A read-mostly STATE plane under `state_mu_` (std::shared_mutex):
//    label stores, object labels, and the proof registry. A miss takes the
//    reader side just long enough to snapshot the proof and credential set
//    (cheap shared_ptr copies), then releases it; control-plane mutations
//    (Say/SayAs, SetProof/ClearProof, AddObjectLabel) take the writer side
//    and then bump the kernel DecisionCache generations, so a verdict
//    computed from a pre-write snapshot is dropped by the kernel's
//    generation-checked insert instead of cached stale. The goalstore and
//    object registry carry their own internal reader-writer locks (guard
//    port handlers probe them from worker threads mid-miss).
//
//  - Per-subject STRIPE locks (`stripes_`, selected by Mix64(subject)):
//    held only around default-guard evaluation, never while the state lock
//    is held. Misses by different subjects overlap end to end — including
//    their remote-authority round trips — while two concurrent misses by
//    the SAME subject serialize, preserving per-subject decision ordering.
//    The stripes are recursive (an embedded authority or the setgoal
//    permission check may re-enter authorization for the same subject on
//    the same thread). AuthorizeBatch acquires the stripes of every
//    subject in the segment in ascending index order, so concurrent
//    batches cannot deadlock against each other.
//
// Designated-guard upcalls hold NO state or stripe lock — the guard
// process executes arbitrary code (it may Say, SetProof, or re-authorize),
// and the kernel's IPC/process/port surfaces are themselves
// concurrency-safe — but they DO serialize on one engine-wide recursive
// mutex: guard processes are single-dispatcher servers, and two misses
// must never run one guard's Handle() concurrently.
// Authority handlers reached from inside a guard evaluation, by contrast,
// run WITH the subject's stripe held — they must not synchronously
// authorize on behalf of arbitrary OTHER subjects (a cross-stripe wait
// could cycle with a concurrent batch).
//
// Consistency contract: a miss that overlaps a control-plane write may
// observe the write partially (the goal, proof, and credential snapshots
// are each internally consistent, but not jointly atomic). Any such racing
// verdict carries a pre-write state version / cache generation, so it is
// never cached past the write, and post-quiescence decisions are exact —
// the serializability argument of the related network-systems work: only
// genuine read-write conflicts serialize, independent proof checks do not.
//
// Reference-returning accessors (StoreFor, SystemStore, goals, objects,
// default_guard) hand out state whose MUTATION is only safe quiescent;
// confine mutations through them to the kernel thread.
class Engine : public kernel::AuthorizationEngine {
 public:
  Engine(kernel::Kernel* kernel, Guard* default_guard);

  // ---------------------------------------------- kernel upcall interface
  kernel::AuthzDecision Authorize(const kernel::AuthzRequest& request) override;
  // Batched authorization: credentials are collected once per distinct
  // subject and duplicate authority queries are collapsed batch-wide (a
  // remote authority consulted by K requests costs one VouchBatch round
  // trip, not K).
  std::vector<kernel::AuthzDecision> AuthorizeBatch(
      std::span<const kernel::AuthzRequest> requests) override;

  // ------------------------------------------------------------- Labels
  // The `say` system call: records `<subject's principal> says <statement>`
  // in the subject's labelstore. The statement text is parsed as NAL.
  Result<LabelHandle> Say(kernel::ProcessId speaker, const std::string& statement_text);
  Result<LabelHandle> SayFormula(kernel::ProcessId speaker, const nal::Formula& statement);
  // System-issued labels (kernel bindings, service attestations). These
  // live in the system labelstore visible to every guard evaluation.
  LabelHandle SayAs(const nal::Principal& speaker, const nal::Formula& statement);
  LabelStore& StoreFor(kernel::ProcessId pid) {
    std::unique_lock<std::shared_mutex> lock(state_mu_);
    return stores_[pid];
  }
  LabelStore& SystemStore() { return system_store_; }
  // Auxiliary labels the resource owner attaches to one object (§2.5).
  void AddObjectLabel(kernel::ObjectId object, const nal::Formula& label);
  void AddObjectLabel(const std::string& object, const nal::Formula& label) {
    AddObjectLabel(kernel::InternObject(object), label);
  }

  // -------------------------------------------------------------- Goals
  // The `setgoal` system call; itself a guarded operation on the object.
  Status SetGoal(kernel::ProcessId caller, kernel::OpId op, kernel::ObjectId obj,
                 nal::Formula goal, kernel::PortId guard_port = 0);
  Status SetGoal(kernel::ProcessId caller, const std::string& operation,
                 const std::string& object, nal::Formula goal, kernel::PortId guard_port = 0);
  Status ClearGoal(kernel::ProcessId caller, kernel::OpId op, kernel::ObjectId obj);
  Status ClearGoal(kernel::ProcessId caller, const std::string& operation,
                   const std::string& object);
  const GoalStore& goals() const { return goals_; }

  // -------------------------------------------------------------- Proofs
  // Pre-submits the proof to use for an access-control tuple (the paper's
  // call(sbj, op, obj, proof, labels) carries the proof; pre-submission
  // plus the decision cache is how repeated calls stay cheap).
  Status SetProof(const kernel::AuthzRequest& tuple, nal::Proof proof);
  Status SetProof(kernel::ProcessId subject, const std::string& operation,
                  const std::string& object, nal::Proof proof);
  Status ClearProof(const kernel::AuthzRequest& tuple);
  Status ClearProof(kernel::ProcessId subject, const std::string& operation,
                    const std::string& object);

  // ------------------------------------------------------------- Objects
  Status RegisterObject(kernel::ObjectId object, kernel::ProcessId owner,
                        kernel::ProcessId manager);
  Status RegisterObject(const std::string& object, kernel::ProcessId owner,
                        kernel::ProcessId manager);
  Status TransferOwnership(kernel::ProcessId caller, const std::string& object,
                           kernel::ProcessId new_owner);
  const ObjectRegistry& objects() const { return objects_; }

  Guard& default_guard() { return *default_guard_; }

  // Collects the credentials visible to a guard evaluation for `subject`
  // on `object`.
  std::vector<nal::Formula> CollectCredentials(kernel::ProcessId subject,
                                               kernel::ObjectId object) const;
  std::vector<nal::Formula> CollectCredentials(kernel::ProcessId subject,
                                               const std::string& object) const {
    // Read path: a never-interned object cannot carry object labels, so
    // only the subject-side credentials apply (and the table must not grow
    // from lookups with novel names).
    std::optional<kernel::ObjectId> id = kernel::FindObject(object);
    if (!id.has_value()) {
      std::shared_lock<std::shared_mutex> lock(state_mu_);
      std::vector<nal::Formula> credentials;
      AppendSubjectCredentialsLocked(subject, &credentials);
      return credentials;
    }
    return CollectCredentials(subject, *id);
  }

  // Stripe selection: same mixer as the kernel decision cache, so a
  // subject that scales there scales here. Public so tests can pick
  // subjects that provably land on distinct stripes.
  static constexpr size_t kNumStripes = 16;
  static size_t StripeOf(kernel::ProcessId subject) {
    return static_cast<size_t>(kernel::Mix64(subject) % kNumStripes);
  }

 private:
  // Interned access-control tuple as an ordered map key.
  struct TupleKey {
    kernel::ProcessId subject = 0;
    kernel::OpId op = 0;
    kernel::ObjectId obj = 0;
    friend auto operator<=>(const TupleKey&, const TupleKey&) = default;
  };
  static TupleKey KeyOf(const kernel::AuthzRequest& r) {
    return TupleKey{r.subject, r.op, r.obj};
  }

  // The bootstrap policy when no goal formula exists (§2.6). Touches only
  // the internally-locked object registry.
  kernel::AuthzDecision DefaultPolicy(const kernel::AuthzRequest& request);

  // The two halves of CollectCredentials, split so AuthorizeBatch can
  // amortize the subject half across a batch while staying credential-
  // for-credential identical to the serial path. Caller holds state_mu_
  // (either side).
  void AppendSubjectCredentialsLocked(kernel::ProcessId subject,
                                      std::vector<nal::Formula>* out) const;
  void AppendObjectCredentialsLocked(kernel::ObjectId object,
                                     std::vector<nal::Formula>* out) const;

  // Designated guard: serialize the request and upcall over IPC. Runs with
  // no engine lock held.
  kernel::AuthzDecision UpcallDesignatedGuard(const kernel::AuthzRequest& request,
                                              const GoalEntry& goal, const nal::Proof& proof,
                                              const std::vector<nal::Formula>& credentials);

  // Monotonic stamp covering every input a cached guard verdict depends on
  // for (subject, object): label stores, object labels, and the proof
  // registration itself. Strictly increases on any relevant mutation.
  // Caller holds state_mu_ (either side).
  uint64_t StateVersionLocked(kernel::ProcessId subject, kernel::ObjectId object,
                              const TupleKey& proof_key) const;

  // The read-mostly state plane (see class comment): guards stores_,
  // system_store_, object_labels_, proofs_, proof_versions_. Never held
  // across guard evaluation or any upcall.
  mutable std::shared_mutex state_mu_;
  // Serializes designated-guard upcalls engine-wide: guard processes are
  // single-dispatcher servers, so their Handle() must never run on two
  // threads at once even though the upcall holds no other engine lock.
  mutable std::recursive_mutex designated_mu_;
  // Per-subject evaluation stripes (see class comment). Leaf-ward of
  // state_mu_: a stripe is only ever acquired with no state lock held.
  mutable std::array<std::recursive_mutex, kNumStripes> stripes_;

  kernel::Kernel* kernel_;
  Guard* default_guard_;
  // Metrics plane ("engine.*"): every entry here is a decision-cache miss
  // reaching the core layer.
  metrics::MetricGroup metrics_{&metrics::Registry::Global(), "engine"};
  metrics::Counter* misses_ = metrics_.NewCounter("misses");
  metrics::Counter* default_policy_ = metrics_.NewCounter("default_policy");
  metrics::Counter* designated_upcalls_ = metrics_.NewCounter("designated_upcalls");
  GoalStore goals_;        // Internally locked.
  ObjectRegistry objects_; // Internally locked.
  std::map<kernel::ProcessId, LabelStore> stores_;
  LabelStore system_store_;
  std::map<kernel::ObjectId, std::vector<nal::Formula>> object_labels_;
  std::map<TupleKey, nal::Proof> proofs_;
  std::map<TupleKey, uint64_t> proof_versions_;
};

}  // namespace nexus::core

#endif  // NEXUS_CORE_ENGINE_H_
