#include "kernel/ipc.h"

#include <atomic>

#include "nal/interner.h"

namespace nexus::kernel {

namespace {

// Process-wide audit counter for the zero-string hot-path assertion.
std::atomic<uint64_t> text_payloads{0};

// Wire op-kind discriminators (first byte after the version).
constexpr uint8_t kOpInterned = 0;
constexpr uint8_t kOpLegacyText = 1;
constexpr uint8_t kWireVersion = 2;

}  // namespace

uint64_t IpcTextPayloadCount() { return text_payloads.load(); }

void ArgVec::DetachArena() {
  // Copy-on-write: appending through an arena some other ArgVec still
  // reads (a monitor's working copy, an aliasing reply) clones it first,
  // so existing slots — including the aliased ones — never move.
  if (arena_ != nullptr && arena_.use_count() > 1) {
    arena_ = std::make_shared<std::string>(*arena_);
  }
}

bool ArgVec::AddPayload(ArgTag tag, std::string_view payload) {
  size_t arena_size = arena_ == nullptr ? 0 : arena_->size();
  if (count_ >= kMaxArgs || arena_size + payload.size() > 0xffffffffULL) {
    return false;
  }
  text_payloads.fetch_add(1, std::memory_order_relaxed);
  DetachArena();
  if (arena_ == nullptr) {
    arena_ = std::make_shared<std::string>();
  }
  uint32_t offset = static_cast<uint32_t>(arena_->size());
  arena_->append(payload);
  slots_[count_++] = Slot{tag, offset, static_cast<uint32_t>(payload.size()), 0};
  return true;
}

bool ArgVec::AddAliasedPayload(ArgTag tag, const ArgVec& source, size_t i) {
  if (count_ >= kMaxArgs || i >= source.count_) {
    return false;
  }
  const Slot& s = source.slots_[i];
  if (s.tag != ArgTag::kBytes && s.tag != ArgTag::kString) {
    return false;
  }
  if (arena_ == nullptr || arena_ == source.arena_) {
    // Adopt the source arena: the slot is a (offset, length) view into
    // bytes that already exist — nothing moves, nothing is counted (the
    // text-payload audit tracks MATERIALIZED payloads only).
    arena_ = source.arena_;
    slots_[count_++] = Slot{tag, s.offset, s.length, 0};
    return true;
  }
  // Mixed provenance (this vector already owns different payload bytes):
  // fall back to the counted copy.
  return AddPayload(tag, source.PayloadOf(s));
}

IpcMessage IpcMessage::FromLegacy(std::string_view operation,
                                  std::vector<std::string> legacy_args, Payload data) {
  IpcMessage message;
  // A name that was ever interned resolves for free; only genuinely novel
  // operation text stays pending for the kernel's charged resolution.
  if (std::optional<OpId> known = FindOp(operation); known.has_value()) {
    message.op = *known;
  } else {
    // Carried UNTRUNCATED: the kernel boundary rejects names past
    // kMaxLegacyOpName (truncating here would alias distinct long names
    // to one identity while other surfaces intern the full text).
    text_payloads.fetch_add(1, std::memory_order_relaxed);
    message.legacy_op_.assign(operation);
  }
  for (const std::string& arg : legacy_args) {
    message.AddString(arg);
  }
  message.data = std::move(data);
  return message;
}

std::string_view SyscallName(Syscall call) {
  switch (call) {
    case Syscall::kNull:
      return "null";
    case Syscall::kGetPpid:
      return "getppid";
    case Syscall::kGetTimeOfDay:
      return "gettimeofday";
    case Syscall::kYield:
      return "yield";
    case Syscall::kOpen:
      return "open";
    case Syscall::kClose:
      return "close";
    case Syscall::kRead:
      return "read";
    case Syscall::kWrite:
      return "write";
    case Syscall::kSay:
      return "say";
    case Syscall::kSetGoal:
      return "setgoal";
    case Syscall::kSetProof:
      return "setproof";
    case Syscall::kInterpose:
      return "interpose";
    case Syscall::kIpcCall:
      return "ipc_call";
    case Syscall::kProcRead:
      return "proc_read";
  }
  return "?";
}

OpId SyscallOp(Syscall call) {
  // Appending a Syscall without growing kSyscallCount would make this
  // table silently resolve the new call to op 0 — fail the build instead.
  static_assert(static_cast<size_t>(Syscall::kProcRead) + 1 == kSyscallCount,
                "update kSyscallCount (and this assert's last enumerator) when "
                "appending syscalls");
  // One interning pass per process lifetime, first use (the table is tiny
  // and the names are kernel-owned, so nothing is charged).
  static const std::array<OpId, kSyscallCount> ids = [] {
    std::array<OpId, kSyscallCount> table{};
    for (size_t i = 0; i < table.size(); ++i) {
      table[i] = InternOp(SyscallName(static_cast<Syscall>(i)));
    }
    return table;
  }();
  size_t index = static_cast<size_t>(call);
  return index < ids.size() ? ids[index] : 0;
}

// ------------------------------------------------------- Typed accessors

namespace {

// Shared scalar read: the exact tag, kU64 (the generic integer), or — for
// the accessors that allow it — decimal text through the single validated
// legacy decode point (ParseDecimalU64 lives here and nowhere else).
Result<uint64_t> ScalarArg(const ArgVec& args, size_t i, ArgTag exact, const char* what) {
  if (i >= args.size()) {
    return InvalidArgument("missing argument slot " + std::to_string(i));
  }
  ArgSlot slot = args[i];
  if (slot.tag() == exact || slot.tag() == ArgTag::kU64) {
    return slot.scalar();
  }
  if (slot.tag() == ArgTag::kString) {
    // Decimal or rejected, never an exception (std::stoull would throw out
    // of the simulation on "garbage" or a 100-digit number).
    std::optional<uint64_t> parsed = ParseDecimalU64(slot.text());
    if (!parsed.has_value()) {
      return InvalidArgument("argument slot " + std::to_string(i) + " must be a " +
                             std::string(what) + " (or decimal text)");
    }
    return *parsed;
  }
  return InvalidArgument("argument slot " + std::to_string(i) + " is not a " +
                         std::string(what));
}

}  // namespace

Result<uint64_t> IpcMessage::ArgU64(size_t i) const {
  return ScalarArg(args, i, ArgTag::kU64, "u64");
}

Result<ProcessId> IpcMessage::ArgProcess(size_t i) const {
  return ScalarArg(args, i, ArgTag::kProcess, "process id");
}

Result<PortId> IpcMessage::ArgPort(size_t i) const {
  return ScalarArg(args, i, ArgTag::kPort, "port id");
}

Result<ObjectId> IpcMessage::ArgObject(size_t i) const {
  if (i >= args.size()) {
    return InvalidArgument("missing argument slot " + std::to_string(i));
  }
  ArgSlot slot = args[i];
  if (slot.tag() == ArgTag::kObject) {
    return static_cast<ObjectId>(slot.scalar());
  }
  if (slot.tag() == ArgTag::kU64) {
    // The generic-integer coercion must not bypass the forged-id check the
    // wire applies to kObject slots (IsKnownObjectId: a forged id would
    // reach the fail-OPEN bootstrap policy as an "unregistered object").
    if (!IsKnownObjectId(slot.scalar())) {
      return InvalidArgument("argument slot " + std::to_string(i) +
                             " is not a known object id");
    }
    return static_cast<ObjectId>(slot.scalar());
  }
  // No text coercion: object NAMES must enter through the charged intern
  // surface (Kernel::InternObjectCharged), never sneak in as ids.
  return InvalidArgument("argument slot " + std::to_string(i) + " is not an object id");
}

Result<uint64_t> IpcMessage::ArgFormula(size_t i) const {
  if (i >= args.size()) {
    return InvalidArgument("missing argument slot " + std::to_string(i));
  }
  ArgSlot slot = args[i];
  if (slot.tag() == ArgTag::kFormula || slot.tag() == ArgTag::kU64) {
    return slot.scalar();
  }
  return InvalidArgument("argument slot " + std::to_string(i) + " is not a formula id");
}

Result<std::string_view> IpcMessage::ArgString(size_t i) const {
  if (i >= args.size()) {
    return InvalidArgument("missing argument slot " + std::to_string(i));
  }
  if (args[i].tag() != ArgTag::kString) {
    return InvalidArgument("argument slot " + std::to_string(i) + " is not a string");
  }
  return args[i].text();
}

Result<ByteView> IpcMessage::ArgBytes(size_t i) const {
  if (i >= args.size()) {
    return InvalidArgument("missing argument slot " + std::to_string(i));
  }
  if (args[i].tag() != ArgTag::kBytes) {
    return InvalidArgument("argument slot " + std::to_string(i) + " is not a byte payload");
  }
  return args[i].blob();
}

// ----------------------------------------------------------- Wire format
//
//   u8  version (2)
//   u8  op kind: 0 = u32 interned OpId follows, 1 = length-prefixed text
//   u8  argc (<= ArgVec::kMaxArgs)
//   per arg: u8 tag, then u64 scalar | u32 length + payload
//   u32 data length + data
//   (end of buffer — trailing bytes are rejected)

Status ValidateWireBounds(const IpcMessage& message) {
  if (message.args_overflowed()) {
    return InvalidArgument("message exceeds the typed-slot capacity (" +
                           std::to_string(ArgVec::kMaxArgs) + " slots)");
  }
  if (message.needs_op_resolution()) {
    if (message.legacy_op().size() > kMaxLegacyOpName) {
      return InvalidArgument("legacy operation name too long");
    }
  } else if (!IsKnownOpId(message.op)) {
    // Forged-id rejection is part of the bounds contract, so it holds with
    // or without interposition (the marshaled path also re-checks at
    // unmarshal time for buffers arriving from elsewhere).
    return InvalidArgument("unknown interned operation id");
  }
  if (message.data.size() > kMaxIpcData) {
    return InvalidArgument("data payload exceeds wire bound");
  }
  for (size_t i = 0; i < message.args.size(); ++i) {
    ArgSlot arg = message.args[i];
    if (!arg.is_scalar() && arg.payload_size() > kMaxArgPayload) {
      return InvalidArgument("argument payload exceeds wire bound");
    }
    if (arg.tag() == ArgTag::kObject && !IsKnownObjectId(arg.scalar())) {
      return InvalidArgument("unknown interned object id");
    }
  }
  return OkStatus();
}

Result<Bytes> MarshalMessage(const IpcMessage& message) {
  Status bounded = ValidateWireBounds(message);
  if (!bounded.ok()) {
    return bounded;
  }
  size_t size = 3 + 4 + message.legacy_op().size() + 4 + message.data.size();
  for (size_t i = 0; i < message.args.size(); ++i) {
    ArgSlot arg = message.args[i];
    size += 1 + (arg.is_scalar() ? 8 : 4 + arg.payload_size());
  }
  Bytes out;
  out.reserve(size);
  out.push_back(kWireVersion);
  if (message.needs_op_resolution()) {
    out.push_back(kOpLegacyText);
    AppendLengthPrefixed(out, ToBytes(message.legacy_op()));
  } else {
    out.push_back(kOpInterned);
    AppendU32(out, message.op);
  }
  out.push_back(static_cast<uint8_t>(message.args.size()));
  for (size_t i = 0; i < message.args.size(); ++i) {
    ArgSlot arg = message.args[i];
    out.push_back(static_cast<uint8_t>(arg.tag()));
    if (arg.is_scalar()) {
      AppendU64(out, arg.scalar());
    } else {
      AppendLengthPrefixed(out, arg.blob());
    }
  }
  AppendLengthPrefixed(out, message.data);
  return out;
}

namespace {

// Shared slot-body decoder (message and reply bodies carry the identical
// argc + tagged-slot layout). Strict: bad tag, overlong count, oversized
// payload, and forged object ids reject the whole buffer.
Status ReadArgSlots(ByteReader& reader, ArgVec* args) {
  Result<uint8_t> argc = reader.ReadU8();
  if (!argc.ok()) {
    return argc.status();
  }
  if (*argc > ArgVec::kMaxArgs) {
    return InvalidArgument("argument slot count exceeds capacity");
  }
  for (uint8_t i = 0; i < *argc; ++i) {
    Result<uint8_t> tag = reader.ReadU8();
    if (!tag.ok()) {
      return tag.status();
    }
    switch (static_cast<ArgTag>(*tag)) {
      case ArgTag::kU64:
      case ArgTag::kProcess:
      case ArgTag::kPort:
      case ArgTag::kObject:
      case ArgTag::kFormula: {
        Result<uint64_t> scalar = reader.ReadU64();
        if (!scalar.ok()) {
          return scalar.status();
        }
        if (static_cast<ArgTag>(*tag) == ArgTag::kObject && !IsKnownObjectId(*scalar)) {
          // A value that fits no table entry is a forgery, not an argument
          // (the bootstrap policy treats unknown objects as unguarded, so
          // letting one through would fail OPEN).
          return InvalidArgument("unknown interned object id");
        }
        args->AddScalar(static_cast<ArgTag>(*tag), *scalar);
        break;
      }
      case ArgTag::kBytes:
      case ArgTag::kString: {
        Result<Bytes> payload = reader.ReadLengthPrefixed();
        if (!payload.ok()) {
          return payload.status();
        }
        if (payload->size() > kMaxArgPayload) {
          return InvalidArgument("argument payload exceeds wire bound");
        }
        args->AddPayload(static_cast<ArgTag>(*tag),
                         std::string_view(reinterpret_cast<const char*>(payload->data()),
                                          payload->size()));
        break;
      }
      default:
        return InvalidArgument("bad argument tag");
    }
  }
  return OkStatus();
}

}  // namespace

Result<IpcMessage> UnmarshalMessage(ByteView buffer) {
  ByteReader reader(buffer);
  Result<uint8_t> version = reader.ReadU8();
  if (!version.ok()) {
    return version.status();
  }
  if (*version != kWireVersion) {
    return InvalidArgument("unsupported IPC wire version");
  }
  IpcMessage message;
  Result<uint8_t> op_kind = reader.ReadU8();
  if (!op_kind.ok()) {
    return op_kind.status();
  }
  if (*op_kind == kOpInterned) {
    Result<uint32_t> op = reader.ReadU32();
    if (!op.ok()) {
      return op.status();
    }
    // Strictness: a forged id that names nothing is rejected here, not
    // carried into dispatch as an unresolvable operation.
    if (!IsKnownOpId(*op)) {
      return InvalidArgument("unknown interned operation id");
    }
    message.op = *op;
  } else if (*op_kind == kOpLegacyText) {
    Result<Bytes> text = reader.ReadLengthPrefixed();
    if (!text.ok()) {
      return text.status();
    }
    if (text->size() > kMaxLegacyOpName) {
      return InvalidArgument("legacy operation name too long");
    }
    // Re-enters through the shim so interned-vs-pending state is rebuilt
    // exactly as the producer's FromLegacy left it.
    IpcMessage shim = IpcMessage::FromLegacy(ToString(*text));
    message.op = shim.op;
    message.legacy_op_ = std::move(shim.legacy_op_);
  } else {
    return InvalidArgument("bad operation kind");
  }
  Status slots = ReadArgSlots(reader, &message.args);
  if (!slots.ok()) {
    return slots;
  }
  Result<Bytes> data = reader.ReadLengthPrefixed();
  if (!data.ok()) {
    return data.status();
  }
  if (data->size() > kMaxIpcData) {
    return InvalidArgument("data payload exceeds wire bound");
  }
  message.data = std::move(*data);
  if (!reader.AtEnd()) {
    return InvalidArgument("trailing bytes after message");
  }
  return message;
}

// ------------------------------------------------------------ Reply side
//
//   u8  version (2)
//   u8  status code (ErrorCode)
//   u32 status message length + text (<= kMaxReplyStatusMessage)
//   u8  argc (<= ArgVec::kMaxArgs)
//   per arg: u8 tag, then u64 scalar | u32 length + payload
//   u32 data length + data
//   (end of buffer — trailing bytes are rejected)

IpcReply IpcReply::FromLegacy(Status status, std::string_view text, Payload data,
                              int64_t value) {
  IpcReply reply(std::move(status));
  // Slot order matters for the v1-compat readers: value() scans for the
  // first kU64, text() for the first kString. Zero/empty legacy fields add
  // no slot at all (a scalar-only legacy reply stays arena-free and does
  // not bump the text-payload audit counter spuriously).
  if (value != 0) {
    reply.AddU64(static_cast<uint64_t>(value));
  }
  if (!text.empty()) {
    reply.AddString(text);
  }
  reply.data = std::move(data);
  return reply;
}

Result<uint64_t> IpcReply::ArgU64(size_t i) const {
  return ScalarArg(args, i, ArgTag::kU64, "u64");
}

Result<ProcessId> IpcReply::ArgProcess(size_t i) const {
  return ScalarArg(args, i, ArgTag::kProcess, "process id");
}

Result<PortId> IpcReply::ArgPort(size_t i) const {
  return ScalarArg(args, i, ArgTag::kPort, "port id");
}

Result<ObjectId> IpcReply::ArgObject(size_t i) const {
  if (i >= args.size()) {
    return InvalidArgument("missing argument slot " + std::to_string(i));
  }
  ArgSlot slot = args[i];
  if (slot.tag() == ArgTag::kObject) {
    return static_cast<ObjectId>(slot.scalar());
  }
  if (slot.tag() == ArgTag::kU64) {
    // Same forged-id discipline as the request side: the generic-integer
    // coercion must not smuggle an unknown id past the kObject check.
    if (!IsKnownObjectId(slot.scalar())) {
      return InvalidArgument("argument slot " + std::to_string(i) +
                             " is not a known object id");
    }
    return static_cast<ObjectId>(slot.scalar());
  }
  return InvalidArgument("argument slot " + std::to_string(i) + " is not an object id");
}

Result<uint64_t> IpcReply::ArgFormula(size_t i) const {
  if (i >= args.size()) {
    return InvalidArgument("missing argument slot " + std::to_string(i));
  }
  ArgSlot slot = args[i];
  if (slot.tag() == ArgTag::kFormula || slot.tag() == ArgTag::kU64) {
    return slot.scalar();
  }
  return InvalidArgument("argument slot " + std::to_string(i) + " is not a formula id");
}

Result<std::string_view> IpcReply::ArgString(size_t i) const {
  if (i >= args.size()) {
    return InvalidArgument("missing argument slot " + std::to_string(i));
  }
  if (args[i].tag() != ArgTag::kString) {
    return InvalidArgument("argument slot " + std::to_string(i) + " is not a string");
  }
  return args[i].text();
}

Result<ByteView> IpcReply::ArgBytes(size_t i) const {
  if (i >= args.size()) {
    return InvalidArgument("missing argument slot " + std::to_string(i));
  }
  if (args[i].tag() != ArgTag::kBytes) {
    return InvalidArgument("argument slot " + std::to_string(i) + " is not a byte payload");
  }
  return args[i].blob();
}

Status ValidateReplyWireBounds(const IpcReply& reply) {
  if (reply.args_overflowed()) {
    return InvalidArgument("reply exceeds the typed-slot capacity (" +
                           std::to_string(ArgVec::kMaxArgs) + " slots)");
  }
  if (reply.status.message().size() > kMaxReplyStatusMessage) {
    return InvalidArgument("reply status message exceeds wire bound");
  }
  if (reply.data.size() > kMaxIpcData) {
    return InvalidArgument("data payload exceeds wire bound");
  }
  for (size_t i = 0; i < reply.args.size(); ++i) {
    ArgSlot arg = reply.args[i];
    if (!arg.is_scalar() && arg.payload_size() > kMaxArgPayload) {
      return InvalidArgument("argument payload exceeds wire bound");
    }
    if (arg.tag() == ArgTag::kObject && !IsKnownObjectId(arg.scalar())) {
      return InvalidArgument("unknown interned object id");
    }
    // A reply is a RESULT: a formula id the receiving side cannot resolve
    // names nothing and can only mislead whatever consumes it — forged,
    // reject whole. (Requests leave this to the consumer, which resolves
    // the goal itself; replies have no later resolution step.)
    if (arg.tag() == ArgTag::kFormula &&
        nal::Interner::Global().Resolve(arg.scalar()) == nullptr) {
      return InvalidArgument("unknown interned formula id");
    }
  }
  return OkStatus();
}

Result<Bytes> MarshalReply(const IpcReply& reply) {
  Status bounded = ValidateReplyWireBounds(reply);
  if (!bounded.ok()) {
    return bounded;
  }
  size_t size = 2 + 4 + reply.status.message().size() + 1 + 4 + reply.data.size();
  for (size_t i = 0; i < reply.args.size(); ++i) {
    ArgSlot arg = reply.args[i];
    size += 1 + (arg.is_scalar() ? 8 : 4 + arg.payload_size());
  }
  Bytes out;
  out.reserve(size);
  out.push_back(kWireVersion);
  out.push_back(static_cast<uint8_t>(reply.status.code()));
  AppendLengthPrefixed(out, ToBytes(reply.status.message()));
  out.push_back(static_cast<uint8_t>(reply.args.size()));
  for (size_t i = 0; i < reply.args.size(); ++i) {
    ArgSlot arg = reply.args[i];
    out.push_back(static_cast<uint8_t>(arg.tag()));
    if (arg.is_scalar()) {
      AppendU64(out, arg.scalar());
    } else {
      AppendLengthPrefixed(out, arg.blob());
    }
  }
  AppendLengthPrefixed(out, reply.data);
  return out;
}

Result<IpcReply> UnmarshalReply(ByteView buffer) {
  ByteReader reader(buffer);
  Result<uint8_t> version = reader.ReadU8();
  if (!version.ok()) {
    return version.status();
  }
  if (*version != kWireVersion) {
    return InvalidArgument("unsupported IPC wire version");
  }
  Result<uint8_t> code = reader.ReadU8();
  if (!code.ok()) {
    return code.status();
  }
  if (*code > static_cast<uint8_t>(ErrorCode::kInternal)) {
    return InvalidArgument("bad reply status code");
  }
  Result<Bytes> status_message = reader.ReadLengthPrefixed();
  if (!status_message.ok()) {
    return status_message.status();
  }
  if (status_message->size() > kMaxReplyStatusMessage) {
    return InvalidArgument("reply status message exceeds wire bound");
  }
  IpcReply reply(Status(static_cast<ErrorCode>(*code), ToString(*status_message)));
  Status slots = ReadArgSlots(reader, &reply.args);
  if (!slots.ok()) {
    return slots;
  }
  Result<Bytes> data = reader.ReadLengthPrefixed();
  if (!data.ok()) {
    return data.status();
  }
  if (data->size() > kMaxIpcData) {
    return InvalidArgument("data payload exceeds wire bound");
  }
  reply.data = std::move(*data);
  if (!reader.AtEnd()) {
    return InvalidArgument("trailing bytes after reply");
  }
  // The shared slot decoder covers object-id forgery; formula ids are a
  // reply-only check (see ValidateReplyWireBounds).
  for (size_t i = 0; i < reply.args.size(); ++i) {
    if (reply.args[i].tag() == ArgTag::kFormula &&
        nal::Interner::Global().Resolve(reply.args[i].scalar()) == nullptr) {
      return InvalidArgument("unknown interned formula id");
    }
  }
  return reply;
}

}  // namespace nexus::kernel
