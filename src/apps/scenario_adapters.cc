#include "apps/scenario_adapters.h"

#include <algorithm>
#include <mutex>
#include <span>
#include <vector>

#include "apps/federation.h"
#include "nal/parser.h"
#include "nal/proof.h"
#include "net/transport.h"
#include "tpm/tpm.h"
#include "util/rng.h"

namespace nexus::apps {

ScenarioSpec FauxbookScenario() {
  ScenarioSpec spec;
  spec.name = "fauxbook";
  spec.read_op = "read_post";
  spec.write_op = "post";
  spec.object_prefix = "fb:post:";
  spec.certifier = "FauxbookCA";
  spec.credential = "member(fauxbook)";
  spec.allow_goal = "FauxbookCA says member(fauxbook)";
  spec.deny_goal = "FauxbookCA says banned(fauxbook)";
  spec.interposed = false;
  return spec;
}

ScenarioSpec DdrmScenario() {
  ScenarioSpec spec;
  spec.name = "ddrm";
  spec.read_op = "recv";
  spec.write_op = "send";
  spec.object_prefix = "nic:buf:";
  spec.certifier = "DriverMonitor";
  spec.credential = "mediated(driver)";
  spec.allow_goal = "DriverMonitor says mediated(driver)";
  spec.deny_goal = "DriverMonitor says quarantined(driver)";
  spec.interposed = true;  // The whole point: calls traverse a real DDRM.
  return spec;
}

ScenarioSpec MoviePlayerScenario() {
  ScenarioSpec spec;
  spec.name = "movie_player";
  spec.read_op = "play";
  spec.write_op = "transcode";
  spec.object_prefix = "movie:";
  spec.certifier = "Studio";
  spec.credential = "licensed(player)";
  spec.allow_goal = "Studio says licensed(player)";
  spec.deny_goal = "Studio says revoked(player)";
  spec.interposed = true;  // DRM-style mediation on the playback port.
  return spec;
}

ScenarioSpec TrudocsScenario() {
  ScenarioSpec spec;
  spec.name = "trudocs";
  spec.read_op = "excerpt";
  spec.write_op = "redact";
  spec.object_prefix = "doc:";
  spec.certifier = "Registrar";
  spec.credential = "cleared(analyst)";
  spec.allow_goal = "Registrar says cleared(analyst)";
  spec.deny_goal = "Registrar says embargoed(analyst)";
  spec.interposed = false;
  return spec;
}

ScenarioSpec FederationScenario() {
  ScenarioSpec spec;
  spec.name = "federation";
  spec.read_op = "fed_read";
  spec.write_op = "fed_post";
  spec.object_prefix = "fed:obj:";
  spec.certifier = "HomeCA";
  spec.credential = "present(user)";
  spec.allow_goal = "HomeCA says present(user)";
  spec.deny_goal = "HomeCA says absent(user)";
  spec.interposed = false;
  // Every engine miss must cross the fabric: the goal carries a session-
  // liveness conjunct only a K-of-N quorum of home instances can vouch.
  spec.authority_leaf = "Session says sessionActive(fleet)";
  spec.federation_homes = 3;
  spec.federation_quorum = 2;
  return spec;
}

Result<ScenarioSpec> ScenarioByName(std::string_view name) {
  if (name == "fauxbook") {
    return FauxbookScenario();
  }
  if (name == "ddrm") {
    return DdrmScenario();
  }
  if (name == "movie_player") {
    return MoviePlayerScenario();
  }
  if (name == "trudocs") {
    return TrudocsScenario();
  }
  if (name == "federation") {
    return FederationScenario();
  }
  return InvalidArgument("unknown scenario: " + std::string(name));
}

std::vector<std::string> ScenarioNames() {
  return {"fauxbook", "ddrm", "movie_player", "trudocs", "federation"};
}

// The guarded service: every read/write IPC re-enters kernel
// authorization for (caller, op, object) exactly like the fileserver
// does, so one Call yields the full provenance chain the auditor checks —
// cache probe, engine miss, guard check, verdict, and the kCall event
// with the interposed flag when a monitor is installed.
class WorkloadScenario::GuardedObjectServer : public kernel::PortHandler {
 public:
  explicit GuardedObjectServer(kernel::Kernel* kernel) : kernel_(kernel) {}

  kernel::IpcReply Handle(const kernel::IpcContext& context,
                          const kernel::IpcMessage& message) override {
    Result<kernel::ObjectId> obj = message.ArgObject(0);
    if (!obj.ok()) {
      return kernel::IpcReply(obj.status());
    }
    kernel::IpcReply reply(
        kernel_->Authorize(kernel::AuthzRequest{context.caller, message.op, *obj}));
    reply.AddU64(reply.status.ok() ? 1 : 0);
    return reply;
  }

  // Batched entry (CallMany): the whole batch's authorization tuples go
  // through ONE Kernel::AuthorizeBatch upcall.
  void HandleMany(const kernel::IpcContext& context,
                  std::span<const kernel::IpcMessage> messages,
                  std::span<kernel::IpcReply> replies) override {
    const size_t n = std::min(messages.size(), replies.size());
    std::vector<kernel::AuthzRequest> requests;
    std::vector<size_t> slot;
    requests.reserve(n);
    slot.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Result<kernel::ObjectId> obj = messages[i].ArgObject(0);
      if (!obj.ok()) {
        replies[i] = kernel::IpcReply(obj.status());
        continue;
      }
      slot.push_back(i);
      requests.push_back(kernel::AuthzRequest{context.caller, messages[i].op, *obj});
    }
    if (requests.empty()) {
      return;
    }
    std::vector<Status> verdicts = kernel_->AuthorizeBatch(requests);
    for (size_t j = 0; j < slot.size(); ++j) {
      kernel::IpcReply reply(verdicts[j]);
      reply.AddU64(reply.status.ok() ? 1 : 0);
      replies[slot[j]] = std::move(reply);
    }
  }

 private:
  kernel::Kernel* kernel_;
};

struct WorkloadScenario::AuditedObjectState {
  std::mutex mu;
  bool allow = true;  // Setup installs the allow goal first.
};

// The federated scenario's world outside the audited nexus: home Nexus
// instances on a simulated fabric, meshed with the provider. Declaration
// order is destruction order in reverse: the federation (which installed
// the provider's quorum and kernel sink wiring) must die before the homes
// and the transport it references.
struct WorkloadScenario::FederationBacking {
  explicit FederationBacking(uint64_t seed) : transport(seed) {}

  net::Transport transport;
  std::vector<std::unique_ptr<tpm::Tpm>> tpms;
  std::vector<std::unique_ptr<core::Nexus>> homes;
  std::unique_ptr<PresenceFederation> federation;
};

WorkloadScenario::WorkloadScenario(core::Nexus* nexus, ScenarioSpec spec)
    : nexus_(nexus), spec_(std::move(spec)) {}

WorkloadScenario::~WorkloadScenario() = default;

Result<std::unique_ptr<WorkloadScenario>> WorkloadScenario::Create(
    core::Nexus* nexus, const ScenarioSpec& spec, const Params& params) {
  std::unique_ptr<WorkloadScenario> scenario(new WorkloadScenario(nexus, spec));
  NEXUS_RETURN_IF_ERROR(scenario->Setup(params));
  return scenario;
}

Status WorkloadScenario::Setup(const Params& params) {
  kernel::Kernel& kernel = nexus_->kernel();
  core::Engine& engine = nexus_->engine();

  Result<nal::Formula> allow = nal::ParseFormula(spec_.allow_goal);
  NEXUS_RETURN_IF_ERROR(allow.status());
  Result<nal::Formula> deny = nal::ParseFormula(spec_.deny_goal);
  NEXUS_RETURN_IF_ERROR(deny.status());
  Result<nal::Formula> credential = nal::ParseFormula(spec_.credential);
  NEXUS_RETURN_IF_ERROR(credential.status());
  allow_goal_ = *allow;
  deny_goal_ = *deny;
  if (!spec_.authority_leaf.empty()) {
    Result<nal::Formula> leaf = nal::ParseFormula(spec_.authority_leaf);
    NEXUS_RETURN_IF_ERROR(leaf.status());
    authority_leaf_ = *leaf;
    // The installed allow goal is the conjunction; holder proofs discharge
    // the left conjunct from the certifier's label and the right through
    // the guard's authority consultation (the quorum, when federated).
    allow_goal_ = nal::FormulaNode::And(*allow, authority_leaf_);
  }
  if (spec_.federation_homes > 0) {
    NEXUS_RETURN_IF_ERROR(SetupFederation());
  }
  allow_goal_id_ = nal::Interner::Global().Intern(allow_goal_);
  deny_goal_id_ = nal::Interner::Global().Intern(deny_goal_);
  read_op_ = kernel::InternOp(spec_.read_op);
  write_op_ = kernel::InternOp(spec_.write_op);

  Result<kernel::ProcessId> server =
      nexus_->CreateProcess("svc_" + spec_.name, ToBytes("svc"));
  NEXUS_RETURN_IF_ERROR(server.status());
  server_ = *server;
  Result<kernel::PortId> port = kernel.CreatePort(server_);
  NEXUS_RETURN_IF_ERROR(port.status());
  service_port_ = *port;
  handler_ = std::make_unique<GuardedObjectServer>(&kernel);
  NEXUS_RETURN_IF_ERROR(kernel.BindHandler(service_port_, handler_.get()));

  // The certifying authority's label is what discharges holder proofs.
  engine.SayAs(nal::Principal(spec_.certifier), *credential);

  objects_.reserve(params.objects);
  audited_ = params.audited < params.objects ? params.audited : params.objects;
  for (size_t i = 0; i < params.objects; ++i) {
    kernel::ObjectId obj = kernel::InternObject(spec_.object_prefix + std::to_string(i));
    objects_.push_back(obj);
    if (i < audited_) {
      // Audited objects are registered (owner = the service) and guarded;
      // the rest stay unregistered — ambient allow traffic that keeps the
      // cache and trace plane busy without audit expectations.
      NEXUS_RETURN_IF_ERROR(engine.RegisterObject(obj, server_, server_));
      NEXUS_RETURN_IF_ERROR(engine.SetGoal(server_, read_op_, obj, allow_goal_));
      audited_state_.push_back(std::make_unique<AuditedObjectState>());
    }
  }

  proof_holders_.reserve(params.proof_holders);
  for (size_t i = 0; i < params.proof_holders; ++i) {
    Result<kernel::ProcessId> holder =
        nexus_->CreateProcess("subj_" + spec_.name + "_" + std::to_string(i), ToBytes("s"));
    NEXUS_RETURN_IF_ERROR(holder.status());
    proof_holders_.push_back(*holder);
    for (size_t o = 0; o < audited_; ++o) {
      nal::Proof proof = authority_leaf_ == nullptr
                             ? nal::proof::Premise(allow_goal_)
                             : nal::proof::AndIntro(nal::proof::Premise(*allow),
                                                    nal::proof::Authority(authority_leaf_));
      NEXUS_RETURN_IF_ERROR(engine.SetProof(
          kernel::AuthzRequest{*holder, read_op_, objects_[o]}, std::move(proof)));
    }
  }

  if (spec_.interposed) {
    services::DdrmPolicy policy;
    policy.allowed_operations = {spec_.read_op, spec_.write_op};
    // cache_decisions=false: the monitor's verdict memo is a plain map,
    // unsafe under the driver's concurrent Call traffic. Policy
    // evaluation itself is read-only.
    monitor_ =
        std::make_unique<services::DeviceDriverMonitor>(policy, /*cache_decisions=*/false);
    NEXUS_RETURN_IF_ERROR(kernel.Interpose(server_, service_port_, monitor_.get()).status());
  }
  return OkStatus();
}

Status WorkloadScenario::SetupFederation() {
  // The session name must match the authority_leaf's argument.
  static constexpr const char* kSession = "fleet";
  federation_ = std::make_unique<FederationBacking>(/*seed=*/0x5EED);
  for (size_t i = 0; i < spec_.federation_homes; ++i) {
    Rng rng(0xFED0 + i);  // Entropy is consumed at construction only.
    federation_->tpms.push_back(std::make_unique<tpm::Tpm>(rng));
    federation_->homes.push_back(
        std::make_unique<core::Nexus>(federation_->tpms.back().get()));
  }
  std::vector<core::Nexus*> homes;
  homes.reserve(federation_->homes.size());
  for (auto& home : federation_->homes) {
    homes.push_back(home.get());
  }
  PresenceFederation::Config config;
  config.quorum = spec_.federation_quorum;
  federation_->federation =
      std::make_unique<PresenceFederation>(nexus_, homes, &federation_->transport, config);
  PresenceFederation& fed = *federation_->federation;
  NEXUS_RETURN_IF_ERROR(fed.init_status());
  NEXUS_RETURN_IF_ERROR(fed.Connect());
  // Prove the presence path end to end once — keypresses at home 0, the
  // certificate through the mesh, a quorum-vouched signup at the provider
  // — then leave the session live for the workload's authority leaf.
  fed.Type(kSession, static_cast<int>(config.min_keypresses) + 1);
  NEXUS_RETURN_IF_ERROR(fed.ShipPresence(kSession));
  return fed.SignUp(kSession);
}

Status WorkloadScenario::Authorize(kernel::ProcessId subject, size_t object_index) {
  return nexus_->kernel().Authorize(
      kernel::AuthzRequest{subject, read_op_, objects_[object_index % objects_.size()]});
}

Status WorkloadScenario::Read(kernel::ProcessId subject, size_t object_index) {
  kernel::IpcMessage message = kernel::IpcMessage::Of(read_op_);
  message.AddObject(objects_[object_index % objects_.size()]);
  return nexus_->kernel().Call(subject, service_port_, message).status;
}

Status WorkloadScenario::Write(kernel::ProcessId subject, size_t object_index) {
  kernel::IpcMessage message = kernel::IpcMessage::Of(write_op_);
  message.AddObject(objects_[object_index % objects_.size()]);
  return nexus_->kernel().Call(subject, service_port_, message).status;
}

Status WorkloadScenario::ReadBatch(kernel::ProcessId subject, size_t object_index,
                                   size_t count, size_t* oks) {
  if (count == 0) {
    return InvalidArgument("empty batch");
  }
  std::vector<kernel::IpcMessage> messages(count);
  std::vector<kernel::IpcReply> replies(count);
  for (size_t j = 0; j < count; ++j) {
    messages[j] = kernel::IpcMessage::Of(read_op_);
    messages[j].AddObject(objects_[(object_index + j) % objects_.size()]);
  }
  size_t ok = nexus_->kernel().CallMany(subject, service_port_, messages, replies);
  if (oks != nullptr) {
    *oks = ok;
  }
  for (const kernel::IpcReply& reply : replies) {
    if (!reply.status.ok()) {
      return reply.status;
    }
  }
  return OkStatus();
}

Status WorkloadScenario::FlipGoal(size_t audited_index) {
  if (audited_ == 0) {
    return FailedPrecondition("scenario has no audited objects");
  }
  AuditedObjectState& state = *audited_state_[audited_index % audited_];
  // Serialized per object: the mutation log records install order only
  // when installs on one (op, obj) don't race each other.
  std::lock_guard<std::mutex> lock(state.mu);
  bool to_allow = !state.allow;
  Status status = nexus_->engine().SetGoal(server_, read_op_,
                                           objects_[audited_index % audited_],
                                           to_allow ? allow_goal_ : deny_goal_);
  if (status.ok()) {
    state.allow = to_allow;
  }
  return status;
}

Status WorkloadScenario::Churn(const std::string& name) {
  Result<kernel::ProcessId> pid = nexus_->kernel().CreateProcess(name, ToBytes("c"));
  NEXUS_RETURN_IF_ERROR(pid.status());
  return nexus_->kernel().KillProcess(*pid);
}

kernel::ProcessId WorkloadScenario::SubjectAt(uint64_t rank) const {
  if (rank < proof_holders_.size()) {
    return proof_holders_[rank];
  }
  // Virtual subject: a ProcessId far above anything the pid allocator
  // will reach. No process record exists — the authorization path treats
  // it as an unprivileged subject with no proofs (cacheable deny on
  // guarded objects), which is exactly a cold simulated user.
  constexpr kernel::ProcessId kVirtualBase = kernel::ProcessId{1} << 40;
  return kVirtualBase + rank;
}

}  // namespace nexus::apps
