// The kernel decision cache (§2.8).
//
// Caches guard verdicts keyed by the access-control tuple (subject,
// operation, object). Two invalidation granularities exist:
//   - a proof update clears the single affected entry;
//   - a setgoal may affect many entries, so the hash function places all
//     entries with the same (operation, object) into the same *subregion*
//     and setgoal clears just that subregion.
// Subregion size is configurable and trades invalidation cost against
// collision rate (an ablation benchmark sweeps it).
#ifndef NEXUS_KERNEL_DECISION_CACHE_H_
#define NEXUS_KERNEL_DECISION_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kernel/types.h"

namespace nexus::kernel {

class DecisionCache {
 public:
  struct Config {
    size_t num_subregions = 64;
    size_t entries_per_subregion = 64;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t invalidated_entries = 0;
    uint64_t subregion_invalidations = 0;
  };

  DecisionCache();
  explicit DecisionCache(const Config& config);

  // Returns the cached verdict, if any.
  std::optional<bool> Lookup(ProcessId subject, std::string_view operation,
                             std::string_view object);

  // Records a verdict (only cacheable decisions should be inserted).
  void Insert(ProcessId subject, std::string_view operation, std::string_view object,
              bool allow);

  // Proof update: clears the single matching entry.
  void InvalidateEntry(ProcessId subject, std::string_view operation, std::string_view object);

  // setgoal: clears the subregion holding all entries for (operation,
  // object).
  void InvalidateSubregion(std::string_view operation, std::string_view object);

  // Drops everything (the cache is soft state; this is always safe).
  void Clear();

  // Runtime resize; drops contents.
  void Resize(const Config& config);

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }

 private:
  struct Entry {
    bool valid = false;
    bool allow = false;
    uint64_t key_hash = 0;
    ProcessId subject = 0;
    std::string operation;
    std::string object;
  };

  size_t SubregionIndex(std::string_view operation, std::string_view object) const;
  Entry* Find(ProcessId subject, std::string_view operation, std::string_view object);

  Config config_;
  std::vector<Entry> entries_;  // num_subregions * entries_per_subregion.
  Stats stats_;
};

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_DECISION_CACHE_H_
