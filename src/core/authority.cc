#include "core/authority.h"

#include "nal/parser.h"

namespace nexus::core {

namespace {

// The trivial future: answers computed synchronously at issue time.
class ReadyVouchFuture : public VouchFuture {
 public:
  explicit ReadyVouchFuture(std::vector<bool> answers) : answers_(std::move(answers)) {}
  std::vector<bool> Wait() override { return std::move(answers_); }

 private:
  std::vector<bool> answers_;
};

// The trivial detailed future, mirroring ReadyVouchFuture.
class ReadyDetailedVouchFuture : public DetailedVouchFuture {
 public:
  explicit ReadyDetailedVouchFuture(VouchOutcome outcome) : outcome_(std::move(outcome)) {}
  VouchOutcome Wait() override { return std::move(outcome_); }

 private:
  VouchOutcome outcome_;
};

}  // namespace

std::unique_ptr<VouchFuture> Authority::VouchBatchAsync(
    std::span<const nal::Formula> statements, uint64_t timeout_us) {
  return std::make_unique<ReadyVouchFuture>(VouchBatch(statements, timeout_us));
}

std::unique_ptr<DetailedVouchFuture> Authority::VouchBatchAsyncDetailed(
    std::span<const nal::Formula> statements, uint64_t timeout_us) {
  return std::make_unique<ReadyDetailedVouchFuture>(
      VouchOutcome{VouchBatch(statements, timeout_us), /*responsive=*/true});
}

kernel::IpcReply AuthorityPortHandler::Handle(const kernel::IpcContext& context,
                                              const kernel::IpcMessage& message) {
  (void)context;
  // Statements cross the authority port as serialized formula text — the
  // one deliberate text surface of the protocol (§2.7 answers must be
  // fresh; nothing about the statement is interned or retained).
  static const kernel::OpId check_op = kernel::InternOp("check");
  if (message.op != check_op || !message.ArgIsString(0)) {
    return kernel::IpcReply(InvalidArgument("authority protocol: check <formula>"));
  }
  Result<nal::Formula> statement = nal::ParseFormula(*message.ArgString(0));
  if (!statement.ok()) {
    return kernel::IpcReply(statement.status());
  }
  if (!authority_->Handles(*statement)) {
    return kernel::IpcReply(NotFound("authority does not evaluate this statement"));
  }
  bool vouches = authority_->Vouches(*statement);
  return kernel::IpcReply::Ok().AddU64(vouches ? 1 : 0);
}

}  // namespace nexus::core
