#include "tpm/tpm.h"

#include <algorithm>

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace nexus::tpm {

namespace {

constexpr std::string_view kQuoteTag = "TPM_QUOTE";
constexpr std::string_view kSealTag = "TPM_SEAL";

}  // namespace

Bytes ComputePcrComposite(const std::vector<PcrValue>& values) {
  crypto::Sha1 hasher;
  for (const PcrValue& v : values) {
    hasher.Update(ByteView(v.data(), v.size()));
  }
  crypto::Sha1Digest d = hasher.Finish();
  return Bytes(d.begin(), d.end());
}

Tpm::Tpm(Rng& rng, int key_bits) : ek_(crypto::GenerateRsaKeyPair(rng, key_bits)) {}

void Tpm::PowerCycle() {
  pcrs_.fill(PcrValue{});
  ++boot_counter_;
}

Status Tpm::ExtendPcr(int index, const crypto::Sha1Digest& measurement) {
  if (index < 0 || index >= kNumPcrs) {
    return OutOfRange("PCR index out of range");
  }
  crypto::Sha1 hasher;
  hasher.Update(ByteView(pcrs_[index].data(), pcrs_[index].size()));
  hasher.Update(ByteView(measurement.data(), measurement.size()));
  pcrs_[index] = hasher.Finish();
  return OkStatus();
}

Status Tpm::MeasureAndExtend(int index, ByteView data) {
  return ExtendPcr(index, crypto::Sha1::Hash(data));
}

Result<PcrValue> Tpm::ReadPcr(int index) const {
  if (index < 0 || index >= kNumPcrs) {
    return OutOfRange("PCR index out of range");
  }
  return pcrs_[index];
}

Result<Bytes> Tpm::ReadComposite(const std::vector<int>& indices) const {
  std::vector<int> sorted = indices;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<PcrValue> values;
  for (int i : sorted) {
    Result<PcrValue> v = ReadPcr(i);
    if (!v.ok()) {
      return v.status();
    }
    values.push_back(*v);
  }
  return ComputePcrComposite(values);
}

Status Tpm::TakeOwnership(Rng& rng, const std::vector<int>& policy_pcrs) {
  if (owned_) {
    return AlreadyExists("TPM already owned");
  }
  Result<Bytes> composite = ReadComposite(policy_pcrs);
  if (!composite.ok()) {
    return composite.status();
  }
  owned_ = true;
  srk_secret_ = rng.RandomBytes(32);
  policy_pcrs_ = policy_pcrs;
  policy_composite_ = *composite;
  dirs_.fill(crypto::Sha1Digest{});
  return OkStatus();
}

void Tpm::ClearOwnership() {
  owned_ = false;
  srk_secret_.clear();
  policy_pcrs_.clear();
  policy_composite_.clear();
  dirs_.fill(crypto::Sha1Digest{});
}

bool Tpm::PolicySatisfied() const {
  if (!owned_) {
    return false;
  }
  Result<Bytes> composite = ReadComposite(policy_pcrs_);
  return composite.ok() && *composite == policy_composite_;
}

Status Tpm::WriteDir(int index, const crypto::Sha1Digest& value) {
  if (index < 0 || index >= kNumDirs) {
    return OutOfRange("DIR index out of range");
  }
  if (!PolicySatisfied()) {
    return PermissionDenied("PCR state does not satisfy the DIR access policy");
  }
  dirs_[index] = value;
  return OkStatus();
}

Result<crypto::Sha1Digest> Tpm::ReadDir(int index) const {
  if (index < 0 || index >= kNumDirs) {
    return OutOfRange("DIR index out of range");
  }
  if (!PolicySatisfied()) {
    return PermissionDenied("PCR state does not satisfy the DIR access policy");
  }
  return dirs_[index];
}

crypto::AesKey Tpm::SealKey() const {
  Bytes material = srk_secret_;
  Append(material, ToBytes(kSealTag));
  crypto::Sha256Digest digest = crypto::Sha256::Hash(material);
  crypto::AesKey key;
  std::copy_n(digest.begin(), key.size(), key.begin());
  return key;
}

Result<Bytes> Tpm::Seal(ByteView data, const std::vector<int>& pcrs) const {
  if (!owned_) {
    return FailedPrecondition("TPM not owned");
  }
  Result<Bytes> composite = ReadComposite(pcrs);
  if (!composite.ok()) {
    return composite.status();
  }
  // Payload: [pcr index list][composite][data], CTR-encrypted under the SRK
  // with an HMAC over the ciphertext.
  Bytes payload;
  AppendU32(payload, static_cast<uint32_t>(pcrs.size()));
  for (int i : pcrs) {
    AppendU32(payload, static_cast<uint32_t>(i));
  }
  AppendLengthPrefixed(payload, *composite);
  AppendLengthPrefixed(payload, data);

  crypto::AesCtr cipher(SealKey(), /*nonce=*/0x5ea1);
  Bytes encrypted = cipher.Crypt(0, payload);
  Bytes mac = crypto::HmacSha256Bytes(srk_secret_, encrypted);

  Bytes blob;
  AppendLengthPrefixed(blob, mac);
  AppendLengthPrefixed(blob, encrypted);
  return blob;
}

Result<Bytes> Tpm::Unseal(ByteView blob) const {
  if (!owned_) {
    return FailedPrecondition("TPM not owned");
  }
  ByteReader reader(blob);
  Result<Bytes> mac = reader.ReadLengthPrefixed();
  if (!mac.ok()) {
    return mac.status();
  }
  Result<Bytes> encrypted = reader.ReadLengthPrefixed();
  if (!encrypted.ok()) {
    return encrypted.status();
  }
  Bytes expected_mac = crypto::HmacSha256Bytes(srk_secret_, *encrypted);
  if (!ConstantTimeEquals(*mac, expected_mac)) {
    return Corruption("seal blob integrity check failed");
  }

  crypto::AesCtr cipher(SealKey(), /*nonce=*/0x5ea1);
  Bytes payload = cipher.Crypt(0, *encrypted);
  ByteReader payload_reader(payload);
  Result<uint32_t> count = payload_reader.ReadU32();
  if (!count.ok()) {
    return count.status();
  }
  std::vector<int> pcrs;
  for (uint32_t i = 0; i < *count; ++i) {
    Result<uint32_t> idx = payload_reader.ReadU32();
    if (!idx.ok()) {
      return idx.status();
    }
    pcrs.push_back(static_cast<int>(*idx));
  }
  Result<Bytes> sealed_composite = payload_reader.ReadLengthPrefixed();
  if (!sealed_composite.ok()) {
    return sealed_composite.status();
  }
  Result<Bytes> data = payload_reader.ReadLengthPrefixed();
  if (!data.ok()) {
    return data.status();
  }

  Result<Bytes> current = ReadComposite(pcrs);
  if (!current.ok()) {
    return current.status();
  }
  if (*current != *sealed_composite) {
    return PermissionDenied("PCR state does not match the sealed composite");
  }
  return data;
}

Result<Bytes> Tpm::Quote(ByteView nonce, const std::vector<int>& pcrs) const {
  Result<Bytes> composite = ReadComposite(pcrs);
  if (!composite.ok()) {
    return composite.status();
  }
  Bytes message = ToBytes(kQuoteTag);
  AppendLengthPrefixed(message, nonce);
  AppendLengthPrefixed(message, *composite);
  return crypto::RsaSign(ek_.private_key, message);
}

bool Tpm::VerifyQuote(const crypto::RsaPublicKey& ek, ByteView nonce,
                      ByteView expected_composite, ByteView signature) {
  Bytes message = ToBytes(kQuoteTag);
  AppendLengthPrefixed(message, nonce);
  AppendLengthPrefixed(message, expected_composite);
  return crypto::RsaVerify(ek, message, signature);
}

Result<Bytes> Tpm::SignWithEk(ByteView data) const {
  if (!owned_) {
    return FailedPrecondition("TPM not owned");
  }
  return crypto::RsaSign(ek_.private_key, data);
}

Status Tpm::NvDefine(uint32_t index, size_t size, bool pcr_bound) {
  if (nvram_.contains(index)) {
    return AlreadyExists("NVRAM region already defined");
  }
  nvram_[index] = NvRegion{Bytes(size, 0), pcr_bound};
  return OkStatus();
}

Status Tpm::NvWrite(uint32_t index, ByteView data) {
  auto it = nvram_.find(index);
  if (it == nvram_.end()) {
    return NotFound("NVRAM region not defined");
  }
  if (it->second.pcr_bound && !PolicySatisfied()) {
    return PermissionDenied("PCR state does not satisfy the NVRAM access policy");
  }
  if (data.size() > it->second.data.size()) {
    return OutOfRange("write exceeds NVRAM region size");
  }
  std::copy(data.begin(), data.end(), it->second.data.begin());
  return OkStatus();
}

Result<Bytes> Tpm::NvRead(uint32_t index) const {
  auto it = nvram_.find(index);
  if (it == nvram_.end()) {
    return NotFound("NVRAM region not defined");
  }
  if (it->second.pcr_bound && !PolicySatisfied()) {
    return PermissionDenied("PCR state does not satisfy the NVRAM access policy");
  }
  return it->second.data;
}

}  // namespace nexus::tpm
