#include "services/read_redactor.h"

#include <algorithm>

namespace nexus::services {

ReadRedactionMonitor::ReadRedactionMonitor(RedactionPolicy policy)
    : policy_(policy), read_op_(kernel::InternOp("read")) {}

kernel::InterposeVerdict ReadRedactionMonitor::OnCall(const kernel::IpcContext& context,
                                                      kernel::IpcMessage& message) {
  (void)context;
  (void)message;
  return kernel::InterposeVerdict::kAllow;
}

kernel::InterposeVerdict ReadRedactionMonitor::OnReply(const kernel::IpcContext& context,
                                                       const kernel::IpcMessage& request,
                                                       kernel::IpcReply& reply) {
  (void)context;
  // Only successful reads are rewritten; everything else (opens, writes,
  // errors) passes untouched. The match is two integer compares against
  // the request the handler actually saw — no text inspection anywhere.
  if (request.op != read_op_ || !reply.status.ok()) {
    return kernel::InterposeVerdict::kAllow;
  }
  bool rewrote = false;

  // Clamp: shrink the data block and rewrite the length slot IN PLACE so
  // the two stay consistent (the fileserver's read reply is slot 0 =
  // length, data = content).
  if (reply.data.size() > policy_.max_read_length) {
    reply.data.resize(static_cast<size_t>(policy_.max_read_length));
    rewrote = true;
  }
  if (!reply.args.empty() && reply.args[0].tag() == kernel::ArgTag::kU64 &&
      reply.args[0].scalar() > policy_.max_read_length) {
    reply.args.SetScalar(0, policy_.max_read_length);
    rewrote = true;
  }

  // Redact: mask the configured byte range of whatever survived the clamp.
  // MutableData is the explicit mutation point of the ref-counted payload:
  // a reply that aliases the fileserver's backing store (or the request's
  // arena) detaches onto a private copy HERE, so the redaction never
  // scribbles on bytes someone else still reads.
  uint64_t begin = std::min<uint64_t>(policy_.redact_begin, reply.data.size());
  uint64_t end = std::min<uint64_t>(policy_.redact_end, reply.data.size());
  if (begin < end) {
    uint8_t* bytes = reply.data.MutableData();
    std::fill(bytes + begin, bytes + end, policy_.fill);
    rewrote = true;
  }

  if (rewrote) {
    rewrites_->Increment();
  }
  return kernel::InterposeVerdict::kAllow;
}

}  // namespace nexus::services
