#include "services/cobuf.h"

namespace nexus::services {

CobufId CobufManager::CreateOwned(const nal::Principal& owner, Bytes data) {
  CobufId id = next_id_++;
  buffers_[id] = Cobuf{owner, std::move(data)};
  return id;
}

bool CobufManager::MayFlow(const nal::Principal& recipient,
                           const nal::Principal& source) const {
  if (recipient == source) {
    return true;
  }
  return oracle_ && oracle_(recipient, source);
}

Result<Bytes> CobufManager::Extract(CobufId id, const nal::Principal& requester) const {
  auto it = buffers_.find(id);
  if (it == buffers_.end()) {
    return NotFound("no such cobuf");
  }
  if (!MayFlow(requester, it->second.owner)) {
    return PermissionDenied("requester does not speak for the cobuf owner");
  }
  return it->second.data;
}

Result<size_t> CobufManager::Length(CobufId id) const {
  auto it = buffers_.find(id);
  if (it == buffers_.end()) {
    return NotFound("no such cobuf");
  }
  return it->second.data.size();
}

Result<nal::Principal> CobufManager::Owner(CobufId id) const {
  auto it = buffers_.find(id);
  if (it == buffers_.end()) {
    return NotFound("no such cobuf");
  }
  return it->second.owner;
}

Result<CobufId> CobufManager::Slice(CobufId id, size_t from, size_t len) {
  auto it = buffers_.find(id);
  if (it == buffers_.end()) {
    return NotFound("no such cobuf");
  }
  if (from + len > it->second.data.size()) {
    return OutOfRange("slice out of bounds");
  }
  CobufId out = next_id_++;
  buffers_[out] = Cobuf{it->second.owner,
                        Bytes(it->second.data.begin() + static_cast<ptrdiff_t>(from),
                              it->second.data.begin() + static_cast<ptrdiff_t>(from + len))};
  return out;
}

Status CobufManager::Append(CobufId dst, CobufId src) {
  auto dst_it = buffers_.find(dst);
  auto src_it = buffers_.find(src);
  if (dst_it == buffers_.end() || src_it == buffers_.end()) {
    return NotFound("no such cobuf");
  }
  if (!MayFlow(dst_it->second.owner, src_it->second.owner)) {
    return PermissionDenied("data flow from " + src_it->second.owner.ToString() + " to " +
                            dst_it->second.owner.ToString() +
                            " is not authorized by the social graph");
  }
  nexus::Append(dst_it->second.data, src_it->second.data);
  return OkStatus();
}

Result<CobufId> CobufManager::CreateLike(CobufId like) {
  auto it = buffers_.find(like);
  if (it == buffers_.end()) {
    return NotFound("no such cobuf");
  }
  CobufId id = next_id_++;
  buffers_[id] = Cobuf{it->second.owner, {}};
  return id;
}

Status CobufManager::Destroy(CobufId id) {
  if (buffers_.erase(id) == 0) {
    return NotFound("no such cobuf");
  }
  return OkStatus();
}

}  // namespace nexus::services
