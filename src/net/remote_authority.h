// Remote authorities: dynamic-state queries across instances (§2.7).
//
// Authority answers are untransferable by design — they may not be cached,
// stored, or forwarded. That property survives the network: a
// RemoteAuthority forwards each query over an attested channel to an
// AuthorityService on the instance where the dynamic state lives, consumes
// the fresh yes/no, and DENIES whenever the answer is missing or late. The
// proof checker already marks proofs with authority leaves uncacheable, so
// every guard evaluation re-crosses the channel.
#ifndef NEXUS_NET_REMOTE_AUTHORITY_H_
#define NEXUS_NET_REMOTE_AUTHORITY_H_

#include <functional>
#include <string>
#include <vector>

#include "core/authority.h"
#include "net/node.h"

namespace nexus::net {

// Server side: exposes local authorities to peers as the "authority"
// service. Unhandled or erroring queries answer deny — never "ask someone
// else".
class AuthorityService : public Service {
 public:
  static constexpr std::string_view kServiceName = "authority";

  explicit AuthorityService(NetNode* node);

  void AddAuthority(core::Authority* authority) { authorities_.push_back(authority); }

  Result<Bytes> Handle(AttestedChannel& channel, ByteView request) override;

  uint64_t queries_served() const { return queries_served_; }

 private:
  NetNode* node_;
  std::vector<core::Authority*> authorities_;
  uint64_t queries_served_ = 0;
};

// Client side: a core::Authority whose truth lives on a peer instance.
// Register with Guard::AddRemoteAuthority so the guard's deadline applies.
class RemoteAuthority : public core::Authority {
 public:
  using HandlesPredicate = std::function<bool(const nal::Formula&)>;

  struct Stats {
    uint64_t queries = 0;
    uint64_t vouched = 0;
    uint64_t denied = 0;
    uint64_t denied_unreachable = 0;  // timeout / loss / channel failure
  };

  // `handles` scopes which statements this authority forwards (nullptr =
  // all); `default_timeout_us` applies to plain Vouches() calls.
  RemoteAuthority(NetNode* node, NodeId peer, HandlesPredicate handles = nullptr,
                  uint64_t default_timeout_us = 10000);

  bool Handles(const nal::Formula& statement) const override;
  bool Vouches(const nal::Formula& statement) override;
  bool VouchesWithin(const nal::Formula& statement, uint64_t timeout_us) override;
  bool IsRemote() const override { return true; }

  const Stats& stats() const { return stats_; }

 private:
  NetNode* node_;
  NodeId peer_;
  HandlesPredicate handles_;
  uint64_t default_timeout_us_;
  Stats stats_;
};

}  // namespace nexus::net

#endif  // NEXUS_NET_REMOTE_AUTHORITY_H_
