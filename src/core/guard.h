// Guards (§2.6, §2.9).
//
// A guard receives (subject, operation, object, proof, labels), checks the
// proof against the goal formula, authenticates the credentials, consults
// authorities for dynamic-state leaves, and answers allow/deny plus a
// cacheability bit. Proof checking is amortized by an internal cache keyed
// on (goal, proof, credential set): entries are sound to reuse because
// labels are valid indefinitely; only authority consultations are repeated.
// Eviction preferentially removes the requesting principal's own entries
// and per-process-tree quotas bound the damage of principal-spawning
// exhaustion attacks.
#ifndef NEXUS_CORE_GUARD_H_
#define NEXUS_CORE_GUARD_H_

#include <list>
#include <map>
#include <string>
#include <vector>

#include "core/authority.h"
#include "core/goalstore.h"
#include "kernel/kernel.h"
#include "nal/checker.h"

namespace nexus::core {

class Guard {
 public:
  struct Config {
    size_t proof_cache_capacity = 1024;
    // Maximum cache entries chargeable to one process tree (§2.9 quotas).
    size_t per_root_quota = 256;
    // Deadline for one remote-authority consultation; expiry is a DENY.
    uint64_t remote_query_timeout_us = 10000;
  };

  struct Stats {
    uint64_t checks = 0;
    uint64_t cache_hits = 0;
    uint64_t authority_queries = 0;
    uint64_t remote_queries = 0;
    uint64_t evictions = 0;
  };

  explicit Guard(kernel::Kernel* kernel);
  Guard(kernel::Kernel* kernel, const Config& config);

  // Registers an embedded authority (runs in the guard's address space; no
  // IPC round trip).
  void AddEmbeddedAuthority(Authority* authority);
  // Registers an external authority living behind an IPC port.
  void AddAuthorityPort(kernel::PortId port);
  // Registers an authority on a remote Nexus instance (reached over an
  // attested channel, src/net). Consulted last; every query carries the
  // configured deadline and an expired or unanswered query denies.
  void AddRemoteAuthority(Authority* authority);

  // Full guard evaluation. `proof` may be null (denied unless the goal is
  // `true`). `state_version` is a monotonic stamp covering everything a
  // cached verdict depends on besides the proof object itself (label stores,
  // proof registrations); the proof-check cache is keyed on (goal, proof
  // identity, state_version), so any credential or proof change invalidates
  // dependent entries without hashing the credential set per call. Pass 0
  // to disable verdict caching for this check.
  kernel::AuthorizationEngine::Verdict Check(kernel::ProcessId subject,
                                             const std::string& operation,
                                             const std::string& object,
                                             const nal::Formula& goal, const nal::Proof& proof,
                                             const std::vector<nal::Formula>& credentials,
                                             uint64_t state_version = 0);

  const Stats& stats() const { return stats_; }
  void FlushCache();

  // Deployments tune the remote-query deadline to their link (callers that
  // registered a RemoteAuthority get this budget per consultation).
  void set_remote_query_timeout_us(uint64_t timeout_us) {
    config_.remote_query_timeout_us = timeout_us;
  }
  uint64_t remote_query_timeout_us() const { return config_.remote_query_timeout_us; }

 private:
  bool QueryAuthorities(const nal::Formula& statement);
  void InsertCacheEntry(kernel::ProcessId quota_root, const std::string& key, bool verdict);

  kernel::Kernel* kernel_;
  Config config_;
  std::vector<Authority*> embedded_authorities_;
  std::vector<kernel::PortId> authority_ports_;
  std::vector<Authority*> remote_authorities_;

  struct CacheEntry {
    std::string key;
    bool verdict;
    kernel::ProcessId quota_root;
  };
  // LRU list + index. Sized in entries; all state is soft (§2.9).
  std::list<CacheEntry> lru_;
  std::map<std::string, std::list<CacheEntry>::iterator> cache_index_;
  std::map<kernel::ProcessId, size_t> root_usage_;
  Stats stats_;
};

// A guard exposed as an IPC service (designated guards, Figure 1: the
// kernel upcalls `check(sbj, op, obj, proof, labels)` over IPC).
class GuardPortHandler : public kernel::PortHandler {
 public:
  GuardPortHandler(Guard* guard, const GoalStore* goals);
  kernel::IpcReply Handle(const kernel::IpcContext& context,
                          const kernel::IpcMessage& message) override;

 private:
  Guard* guard_;
  const GoalStore* goals_;
};

}  // namespace nexus::core

#endif  // NEXUS_CORE_GUARD_H_
