// Hash-consing for NAL formulas (§2.8 made concrete).
//
// Repeated authorizations must cost a cache lookup, which means formula
// identity must cost an integer compare — not a ToString() or a recursive
// structural walk. The interner assigns every distinct formula a stable
// FormulaId: structurally equal formulas (built independently, parsed from
// different strings, arriving over the wire) intern to the same id, so
// equality is `a == b` on a 64-bit value and cache keys are integer tuples.
//
// Interning is memoized two ways:
//   - by pointer identity for canonical nodes (which the interner owns
//     forever, so the address is a stable key): re-interning one is a
//     single hash probe — the common case, since label stores and goal
//     stores hold canonical nodes;
//   - by precomputed 64-bit structural hash for everything else: a
//     structurally-equal stranger lands in the same bucket and is unified
//     with the canonical node after one Equals() confirmation.
//
// The interner is append-only soft state shared by label stores, goal
// stores, and guard proof-check caches; like the rest of the kernel
// simulation it is single-threaded by design.
#ifndef NEXUS_NAL_INTERNER_H_
#define NEXUS_NAL_INTERNER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nal/formula.h"

namespace nexus::nal {

// 1-based; 0 never names a formula.
using FormulaId = uint64_t;
inline constexpr FormulaId kInvalidFormulaId = 0;

// 64-bit structural hash of a formula (kind, predicate names, terms,
// principals, children). Equal formulas hash equal; collisions are resolved
// by Equals() inside the interner.
uint64_t StructuralHash(const Formula& f);

class Interner {
 public:
  // Assigns (or retrieves) the id of the interning class containing `f`.
  // Null formulas intern to kInvalidFormulaId.
  FormulaId Intern(const Formula& f);

  // The canonical node for `f`'s interning class. Holding canonical nodes
  // (instead of whatever copy arrived) makes later interning a pointer
  // lookup and lets structurally-equal formulas share one tree.
  Formula Canonical(const Formula& f);

  // The canonical formula for an id; nullptr for unknown/invalid ids.
  Formula Resolve(FormulaId id) const;

  // Number of distinct interned formulas.
  size_t size() const { return formulas_.size(); }

  // The process-wide interner used by label stores, goal stores, and
  // guards. Ids from it are comparable across all of them.
  static Interner& Global();

 private:
  std::unordered_map<const FormulaNode*, FormulaId> by_pointer_;
  // hash -> ids of interned formulas with that structural hash.
  std::unordered_map<uint64_t, std::vector<FormulaId>> by_hash_;
  std::vector<Formula> formulas_;  // id - 1 -> canonical node.
};

}  // namespace nexus::nal

#endif  // NEXUS_NAL_INTERNER_H_
