// A Nexus instance's presence on the network fabric.
//
// A NetNode binds one core::Nexus to one Transport endpoint: it owns the
// attested channels to peer instances (creating responder channels on
// inbound handshakes), and routes authenticated service requests arriving
// over established channels to registered services (certificate exchange,
// remote authorities, ...). The node is deliberately thin — all trust
// decisions live in AttestedChannel and in the Nexus peer registry.
#ifndef NEXUS_NET_NODE_H_
#define NEXUS_NET_NODE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/nexus.h"
#include "net/channel.h"
#include "net/transport.h"

namespace nexus::net {

// A named request handler reachable over any established channel of a node.
class Service {
 public:
  virtual ~Service() = default;
  virtual Result<Bytes> Handle(AttestedChannel& channel, ByteView request) = 0;
};

class NetNode : public Endpoint, public ChannelServices {
 public:
  NetNode(core::Nexus* nexus, Transport* transport, NodeId id);
  ~NetNode() override;

  NetNode(const NetNode&) = delete;
  NetNode& operator=(const NetNode&) = delete;

  core::Nexus& nexus() { return *nexus_; }
  Transport& transport() { return *transport_; }
  const NodeId& id() const { return id_; }

  void RegisterService(const std::string& name, Service* service);

  // Returns the established channel to `peer`, running the attested
  // handshake if none exists yet. Fails if the peer rejects us or we reject
  // the peer (untrusted EK, bad attestation). Thread-safe lookups; for an
  // ALREADY-established channel this is a lock-plus-atomic-read fast path,
  // which is what worker threads hit on every remote authority query.
  // First-time handshakes should happen before concurrent traffic starts
  // (see the channel.h threading note).
  Result<AttestedChannel*> Connect(const NodeId& peer);
  // The channel to `peer` if one exists (established or not).
  AttestedChannel* ChannelTo(const NodeId& peer);

  // Endpoint: route by channel id; unknown ids starting with "hello" spawn
  // responder channels.
  void OnMessage(const Message& message) override;

  // ChannelServices: dispatch a decrypted, authenticated request.
  Result<Bytes> HandleRequest(AttestedChannel& channel, const std::string& service,
                              ByteView request) override;

 private:
  // The channel for `peer` usable for initiating traffic, or nullptr.
  // Caller holds mu_.
  AttestedChannel* UsableChannelLocked(const NodeId& peer);

  core::Nexus* nexus_;
  Transport* transport_;
  NodeId id_;
  // Guards the three maps below. Never held across a handshake or a
  // service handler — channel objects themselves synchronize their own
  // data plane, and OnMessage deliveries are serialized by the transport
  // pump lock.
  mutable std::mutex mu_;
  std::map<uint64_t, std::unique_ptr<AttestedChannel>> channels_;
  std::map<NodeId, uint64_t> channel_by_peer_;
  std::map<std::string, Service*> services_;
};

}  // namespace nexus::net

#endif  // NEXUS_NET_NODE_H_
