// Table 1: system call overhead in cycles.
//
// Columns reproduced: "Nexus Bare" (interposition disabled), "Nexus"
// (standard: marshaling + syscall-channel interposition), and "Linux"
// (monolithic baseline: the same operation as a direct function call with
// no IPC hop). A blocked interposed null call is also measured (it returns
// earlier than a completed call).
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "core/nexus.h"
#include "kernel/kernel.h"
#include "tpm/tpm.h"
#include "util/cycles.h"

namespace {

using nexus::Bytes;
using nexus::ToBytes;
using nexus::kernel::IpcMessage;
using nexus::kernel::Syscall;

struct Harness {
  Harness() : tpm_rng(42), tpm(tpm_rng), nexus(&tpm) {
    client = *nexus.CreateProcess("bench-client", ToBytes("bench-client"));
    nexus.fs().CreateFile("/bench/file", Bytes(4096, 'x'));
    nexus.fs().CreateFile("/bench/big", Bytes(64 * 1024, 'x'));
    IpcMessage open_msg;
    open_msg.AddString("/bench/file");
    open_fd = nexus.kernel().Invoke(client, Syscall::kOpen, open_msg).value();
    IpcMessage open_big;
    open_big.AddString("/bench/big");
    big_fd = nexus.kernel().Invoke(client, Syscall::kOpen, open_big).value();
    nexus.kernel().scheduler().AddClient(client, 1);
  }

  nexus::Rng tpm_rng;
  nexus::tpm::Tpm tpm;
  nexus::core::Nexus nexus;
  nexus::kernel::ProcessId client = 0;
  int64_t open_fd = 0;
  int64_t big_fd = 0;
};

Harness& H() {
  static Harness harness;
  return harness;
}

// Blocks every syscall: measures the early-return path ("null (block)").
class BlockAll : public nexus::kernel::Interceptor {
 public:
  nexus::kernel::InterposeVerdict OnCall(const nexus::kernel::IpcContext&,
                                         IpcMessage&) override {
    return nexus::kernel::InterposeVerdict::kDeny;
  }
};

void RunSyscall(benchmark::State& state, Syscall call, bool interposition,
                IpcMessage msg = {}) {
  Harness& h = H();
  h.nexus.kernel().set_interposition_enabled(interposition);
  uint64_t cycles = 0;
  uint64_t calls = 0;
  for (auto _ : state) {
    uint64_t start = nexus::ReadCycleCounter();
    benchmark::DoNotOptimize(h.nexus.kernel().Invoke(h.client, call, msg));
    cycles += nexus::ReadCycleCounter() - start;
    ++calls;
  }
  h.nexus.kernel().set_interposition_enabled(true);
  state.counters["cycles/call"] =
      benchmark::Counter(static_cast<double>(cycles) / static_cast<double>(calls));
}

// "Linux": monolithic path — the equivalent operation as one direct call.
void RunDirect(benchmark::State& state, const std::function<void()>& op) {
  uint64_t cycles = 0;
  uint64_t calls = 0;
  for (auto _ : state) {
    uint64_t start = nexus::ReadCycleCounter();
    op();
    cycles += nexus::ReadCycleCounter() - start;
    ++calls;
  }
  state.counters["cycles/call"] =
      benchmark::Counter(static_cast<double>(cycles) / static_cast<double>(calls));
}

void BM_null_bare(benchmark::State& s) { RunSyscall(s, Syscall::kNull, false); }
void BM_null_nexus(benchmark::State& s) { RunSyscall(s, Syscall::kNull, true); }
void BM_null_blocked(benchmark::State& s) {
  Harness& h = H();
  BlockAll blocker;
  auto port = nexus::kernel::SyscallIpcPort(Syscall::kNull);
  uint64_t token = *h.nexus.kernel().Interpose(nexus::kernel::kKernelProcessId, port, &blocker);
  RunSyscall(s, Syscall::kNull, true);
  h.nexus.kernel().RemoveInterposition(token);
}
void BM_getppid_bare(benchmark::State& s) { RunSyscall(s, Syscall::kGetPpid, false); }
void BM_getppid_nexus(benchmark::State& s) { RunSyscall(s, Syscall::kGetPpid, true); }
void BM_getppid_linux(benchmark::State& s) {
  Harness& h = H();
  RunDirect(s, [&h] {
    benchmark::DoNotOptimize(h.nexus.kernel().GetParent(h.client));
  });
}
void BM_gettimeofday_bare(benchmark::State& s) { RunSyscall(s, Syscall::kGetTimeOfDay, false); }
void BM_gettimeofday_nexus(benchmark::State& s) { RunSyscall(s, Syscall::kGetTimeOfDay, true); }
void BM_gettimeofday_linux(benchmark::State& s) {
  Harness& h = H();
  RunDirect(s, [&h] { benchmark::DoNotOptimize(h.nexus.kernel().NowMicros()); });
}
void BM_yield_bare(benchmark::State& s) { RunSyscall(s, Syscall::kYield, false); }
void BM_yield_nexus(benchmark::State& s) { RunSyscall(s, Syscall::kYield, true); }
void BM_yield_linux(benchmark::State& s) {
  Harness& h = H();
  RunDirect(s, [&h] { benchmark::DoNotOptimize(h.nexus.kernel().scheduler().Tick()); });
}
void BM_open_nexus(benchmark::State& s) {
  // open+close so fd tables do not grow unboundedly; reported as one op.
  Harness& h = H();
  h.nexus.kernel().set_interposition_enabled(true);
  uint64_t cycles = 0;
  uint64_t calls = 0;
  IpcMessage open_msg;
  open_msg.AddString("/bench/file");
  for (auto _ : s) {
    uint64_t start = nexus::ReadCycleCounter();
    auto reply = h.nexus.kernel().Invoke(h.client, Syscall::kOpen, open_msg);
    cycles += nexus::ReadCycleCounter() - start;
    ++calls;
    IpcMessage close_msg;
    close_msg.AddU64(static_cast<uint64_t>(reply.value()));
    h.nexus.kernel().Invoke(h.client, Syscall::kClose, close_msg);
  }
  s.counters["cycles/call"] =
      benchmark::Counter(static_cast<double>(cycles) / static_cast<double>(calls));
}
void BM_close_nexus(benchmark::State& s) {
  Harness& h = H();
  uint64_t cycles = 0;
  uint64_t calls = 0;
  IpcMessage open_msg;
  open_msg.AddString("/bench/file");
  for (auto _ : s) {
    auto reply = h.nexus.kernel().Invoke(h.client, Syscall::kOpen, open_msg);
    IpcMessage close_msg;
    close_msg.AddU64(static_cast<uint64_t>(reply.value()));
    uint64_t start = nexus::ReadCycleCounter();
    h.nexus.kernel().Invoke(h.client, Syscall::kClose, close_msg);
    cycles += nexus::ReadCycleCounter() - start;
    ++calls;
  }
  s.counters["cycles/call"] =
      benchmark::Counter(static_cast<double>(cycles) / static_cast<double>(calls));
}
void BM_read_nexus(benchmark::State& s) {
  // Typed fd/offset/length slots: the interposed read path builds and
  // parses zero strings (ABI v2).
  IpcMessage msg;
  msg.AddU64(static_cast<uint64_t>(H().open_fd)).AddU64(0).AddU64(1024);
  RunSyscall(s, Syscall::kRead, true, std::move(msg));
}
void BM_read64k_nexus(benchmark::State& s) {
  // The zero-copy showcase: a 64KiB read reply is a slice of the
  // fileserver's backing store — no payload memcpy end to end.
  IpcMessage msg;
  msg.AddU64(static_cast<uint64_t>(H().big_fd)).AddU64(0).AddU64(64 * 1024);
  RunSyscall(s, Syscall::kRead, true, std::move(msg));
}
void BM_write_nexus(benchmark::State& s) {
  Harness& h = H();
  IpcMessage msg;
  msg.AddU64(static_cast<uint64_t>(h.open_fd)).AddU64(0);
  msg.data = Bytes(1024, 'y');
  uint64_t cycles = 0;
  uint64_t calls = 0;
  for (auto _ : s) {
    uint64_t start = nexus::ReadCycleCounter();
    benchmark::DoNotOptimize(h.nexus.kernel().Invoke(h.client, Syscall::kWrite, msg));
    cycles += nexus::ReadCycleCounter() - start;
    ++calls;
  }
  s.counters["cycles/call"] =
      benchmark::Counter(static_cast<double>(cycles) / static_cast<double>(calls));
}

BENCHMARK(BM_null_bare);
BENCHMARK(BM_null_nexus);
BENCHMARK(BM_null_blocked);
BENCHMARK(BM_getppid_bare);
BENCHMARK(BM_getppid_nexus);
BENCHMARK(BM_getppid_linux);
BENCHMARK(BM_gettimeofday_bare);
BENCHMARK(BM_gettimeofday_nexus);
BENCHMARK(BM_gettimeofday_linux);
BENCHMARK(BM_yield_bare);
BENCHMARK(BM_yield_nexus);
BENCHMARK(BM_yield_linux);
BENCHMARK(BM_open_nexus);
BENCHMARK(BM_close_nexus);
BENCHMARK(BM_read_nexus);
BENCHMARK(BM_read64k_nexus);
BENCHMARK(BM_write_nexus);

}  // namespace

NEXUS_BENCHMARK_MAIN();
