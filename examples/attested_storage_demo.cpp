// Attested storage (§3.3): SSRs surviving reboots, detecting replay, and
// the crash-consistent VDIR protocol under power failure.
#include <cstdio>

#include "storage/ssr.h"
#include "tpm/tpm.h"

using namespace nexus;
using namespace nexus::storage;

namespace {

void MeasuredBoot(tpm::Tpm& t) {
  t.PowerCycle();
  t.MeasureAndExtend(0, ToBytes("firmware"));
  t.MeasureAndExtend(1, ToBytes("loader"));
  t.MeasureAndExtend(2, ToBytes("nexus-kernel"));
}

}  // namespace

int main() {
  Rng rng(19);
  tpm::Tpm t(rng);
  BlockDevice disk;
  MeasuredBoot(t);
  t.TakeOwnership(rng, {0, 1, 2});

  // --- Create an encrypted SSR and write a secret.
  VdirTable vdirs = *VdirTable::Boot(&t, &disk);
  VkeyTable vkeys(&t, &rng);
  SsrManager ssrs(&disk, &vdirs, &vkeys);
  VkeyId key = *vkeys.Create();
  SsrId region = *ssrs.Create(/*encrypted=*/true, key, /*nonce=*/99);
  ssrs.Write(region, 0, ToBytes("auth-token=very-secret-value"));
  std::printf("wrote secret to encrypted SSR %u (anchored in TPM DIRs)\n", region);

  Bytes on_disk = *disk.Read("ssr/" + std::to_string(region) + "/block/0");
  std::printf("raw block on disk starts: %s... (ciphertext)\n",
              HexEncode(ByteView(on_disk.data(), 8)).c_str());

  // --- Reboot: data survives and verifies.
  MeasuredBoot(t);
  VdirTable vdirs2 = *VdirTable::Boot(&t, &disk);
  SsrManager ssrs2(&disk, &vdirs2, &vkeys);
  ssrs2.Recover();
  std::printf("after reboot: \"%s\"\n", ToString(*ssrs2.Read(region, 0, 28)).c_str());

  // --- Replay attack: restore an old disk image while powered down.
  Bytes snapshot_block = *disk.Read("ssr/" + std::to_string(region) + "/block/0");
  Bytes snapshot_meta = *disk.Read("ssr/" + std::to_string(region) + "/meta");
  ssrs2.Write(region, 0, ToBytes("auth-token=ROTATED-value-abcd"));
  disk.Write("ssr/" + std::to_string(region) + "/block/0", snapshot_block);
  disk.Write("ssr/" + std::to_string(region) + "/meta", snapshot_meta);
  MeasuredBoot(t);
  VdirTable vdirs3 = *VdirTable::Boot(&t, &disk);
  SsrManager ssrs3(&disk, &vdirs3, &vkeys);
  std::printf("recovery after replayed image: %s\n", ssrs3.Recover().ToString().c_str());

  // --- Power failure mid-update: the 4-step DIR protocol recovers.
  BlockDevice disk2;
  Rng rng2(23);
  tpm::Tpm t2(rng2);
  MeasuredBoot(t2);
  t2.TakeOwnership(rng2, {0, 1, 2});
  VdirTable vt = *VdirTable::Boot(&t2, &disk2);
  VdirId vd = *vt.Allocate();
  vt.Write(vd, crypto::Sha1::Hash(ToBytes("committed-state")));
  disk2.FailAfterWrites(1, /*tear_last=*/true);  // Die during step 1.
  Status failed = vt.Write(vd, crypto::Sha1::Hash(ToBytes("in-flight-state")));
  std::printf("update during power failure: %s\n", failed.ToString().c_str());
  disk2.ClearFailure();
  MeasuredBoot(t2);
  auto recovered = VdirTable::Boot(&t2, &disk2);
  std::printf("recovery after torn write: %s (value %s)\n",
              recovered.status().ToString().c_str(),
              (*recovered->Read(vd) == crypto::Sha1::Hash(ToBytes("committed-state")))
                  ? "= committed state"
                  : "= in-flight state");

  // --- A modified kernel cannot reach the anchored state at all.
  tpm::Tpm& chip = t2;
  chip.PowerCycle();
  chip.MeasureAndExtend(0, ToBytes("firmware"));
  chip.MeasureAndExtend(1, ToBytes("loader"));
  chip.MeasureAndExtend(2, ToBytes("EVIL-kernel"));
  auto evil_boot = VdirTable::Boot(&chip, &disk2);
  std::printf("boot with modified kernel: %s\n", evil_boot.status().ToString().c_str());
  return 0;
}
