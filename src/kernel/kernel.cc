#include "kernel/kernel.h"

#include <chrono>

namespace nexus::kernel {

Kernel::Kernel() : scheduler_(std::make_unique<StrideScheduler>()) {
  procfs_.PublishValue(kKernelProcessId, "/proc/kernel/name", "nexus");
}

uint64_t Kernel::NowMicros() const {
  if (time_source_) {
    return time_source_();
  }
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

// ------------------------------------------------------------- Processes

Result<ProcessId> Kernel::CreateProcess(const std::string& name, ByteView binary,
                                        ProcessId parent) {
  if (parent != kKernelProcessId && !IsAlive(parent)) {
    return NotFound("parent process not alive");
  }
  Process p;
  p.pid = next_pid_++;
  p.parent = parent;
  p.name = name;
  p.binary_hash = crypto::Sha256::Hash(binary);
  // The quota root is the topmost non-kernel ancestor: incessantly spawned
  // children are all charged to the tree's root (§2.9).
  if (parent == kKernelProcessId) {
    p.quota_root = p.pid;
  } else {
    p.quota_root = processes_.at(parent).quota_root;
  }
  ProcessId pid = p.pid;
  PublishProcessNodes(p);
  processes_.emplace(pid, std::move(p));
  return pid;
}

void Kernel::PublishProcessNodes(const Process& process) {
  const std::string base = ProcPath(process.pid);
  procfs_.PublishValue(process.pid, base + "/name", process.name);
  procfs_.PublishValue(process.pid, base + "/parent", std::to_string(process.parent));
  procfs_.PublishValue(
      process.pid, base + "/hash",
      HexEncode(ByteView(process.binary_hash.data(), process.binary_hash.size())));
}

Status Kernel::KillProcess(ProcessId pid) {
  auto it = processes_.find(pid);
  if (it == processes_.end() || !it->second.alive) {
    return NotFound("no such process");
  }
  it->second.alive = false;
  procfs_.RemoveOwned(pid);
  channels_.erase(pid);
  for (auto port_it = ports_.begin(); port_it != ports_.end();) {
    if (port_it->second.owner == pid) {
      PortId dead = port_it->first;
      port_it = ports_.erase(port_it);
      for (auto& [owner, connected] : channels_) {
        connected.erase(dead);
      }
    } else {
      ++port_it;
    }
  }
  scheduler_->RemoveClient(pid);  // Best effort; may not be scheduled.
  return OkStatus();
}

Result<const Process*> Kernel::GetProcess(ProcessId pid) const {
  auto it = processes_.find(pid);
  if (it == processes_.end()) {
    return NotFound("no such process");
  }
  return &it->second;
}

bool Kernel::IsAlive(ProcessId pid) const {
  auto it = processes_.find(pid);
  return it != processes_.end() && it->second.alive;
}

Result<ProcessId> Kernel::GetParent(ProcessId pid) const {
  auto it = processes_.find(pid);
  if (it == processes_.end()) {
    return NotFound("no such process");
  }
  return it->second.parent;
}

std::vector<ProcessId> Kernel::Processes() const {
  std::vector<ProcessId> out;
  for (const auto& [pid, p] : processes_) {
    if (p.alive) {
      out.push_back(pid);
    }
  }
  return out;
}

Status Kernel::RestrictSyscalls(ProcessId pid, std::set<Syscall> allowed) {
  auto it = processes_.find(pid);
  if (it == processes_.end() || !it->second.alive) {
    return NotFound("no such process");
  }
  // Restriction is monotone: a process can only narrow its own surface.
  if (it->second.allowed_syscalls.has_value()) {
    for (Syscall sc : allowed) {
      if (!it->second.allowed_syscalls->contains(sc)) {
        return PermissionDenied("cannot re-acquire relinquished system calls");
      }
    }
  }
  it->second.allowed_syscalls = std::move(allowed);
  return OkStatus();
}

nal::Principal Kernel::ProcessPrincipal(ProcessId pid) const {
  return KernelPrincipal().Sub("ipd").Sub(std::to_string(pid));
}

std::string Kernel::ProcPath(ProcessId pid) { return "/proc/ipd/" + std::to_string(pid); }

// ----------------------------------------------------------------- Ports

Result<PortId> Kernel::CreatePort(ProcessId owner) {
  if (owner != kKernelProcessId && !IsAlive(owner)) {
    return NotFound("no such process");
  }
  PortId id = next_port_++;
  ports_[id] = Port{id, owner, nullptr};
  procfs_.PublishValue(owner, "/proc/port/" + std::to_string(id) + "/owner",
                       std::to_string(owner));
  return id;
}

Status Kernel::DestroyPort(PortId port) {
  if (ports_.erase(port) == 0) {
    return NotFound("no such port");
  }
  for (auto& [owner, connected] : channels_) {
    connected.erase(port);
  }
  procfs_.Remove("/proc/port/" + std::to_string(port) + "/owner");
  return OkStatus();
}

Status Kernel::BindHandler(PortId port, PortHandler* handler) {
  auto it = ports_.find(port);
  if (it == ports_.end()) {
    return NotFound("no such port");
  }
  it->second.handler = handler;
  return OkStatus();
}

Result<ProcessId> Kernel::PortOwner(PortId port) const {
  auto it = ports_.find(port);
  if (it == ports_.end()) {
    return NotFound("no such port");
  }
  return it->second.owner;
}

Status Kernel::ConnectPort(ProcessId pid, PortId port) {
  if (!IsAlive(pid) && pid != kKernelProcessId) {
    return NotFound("no such process");
  }
  if (!ports_.contains(port)) {
    return NotFound("no such port");
  }
  channels_[pid].insert(port);
  return OkStatus();
}

Status Kernel::DisconnectPort(ProcessId pid, PortId port) {
  auto it = channels_.find(pid);
  if (it == channels_.end() || it->second.erase(port) == 0) {
    return NotFound("no such channel");
  }
  return OkStatus();
}

bool Kernel::HasChannel(ProcessId pid, PortId port) const {
  auto it = channels_.find(pid);
  return it != channels_.end() && it->second.contains(port);
}

std::vector<PortId> Kernel::Ports() const {
  std::vector<PortId> out;
  out.reserve(ports_.size());
  for (const auto& [id, p] : ports_) {
    out.push_back(id);
  }
  return out;
}

// ------------------------------------------------------------------- IPC

IpcReply Kernel::Call(ProcessId caller, PortId port, const IpcMessage& message) {
  auto port_it = ports_.find(port);
  if (port_it == ports_.end()) {
    return IpcReply{NotFound("no such port"), {}, {}, 0};
  }

  if (!interposition_enabled_) {
    return Dispatch(caller, port, message);
  }

  // Marshal/unmarshal: every interposable call crosses a defined message
  // boundary so monitors see (and can rewrite) a flat buffer.
  Bytes wire = MarshalMessage(message);
  Result<IpcMessage> unmarshaled = UnmarshalMessage(wire);
  if (!unmarshaled.ok()) {
    return IpcReply{unmarshaled.status(), {}, {}, 0};
  }
  IpcMessage working = std::move(*unmarshaled);

  IpcContext context{caller, port};
  // Newest interceptor first; composition is simply nesting (§3.2).
  std::vector<Interceptor*> active;
  for (auto it = interpositions_.rbegin(); it != interpositions_.rend(); ++it) {
    if (it->port == port) {
      active.push_back(it->interceptor);
    }
  }
  for (Interceptor* interceptor : active) {
    if (interceptor->OnCall(context, working) == InterposeVerdict::kDeny) {
      // A blocked call returns earlier than a completed call (Table 1).
      return IpcReply{PermissionDenied("blocked by reference monitor"), {}, {}, 0};
    }
  }

  IpcReply reply = Dispatch(caller, port, working);

  for (auto it = active.rbegin(); it != active.rend(); ++it) {
    (*it)->OnReturn(context, reply);
  }
  return reply;
}

IpcReply Kernel::Dispatch(ProcessId caller, PortId port, const IpcMessage& message) {
  auto it = ports_.find(port);
  if (it == ports_.end()) {
    return IpcReply{NotFound("no such port"), {}, {}, 0};
  }
  if (it->second.handler == nullptr) {
    return IpcReply{Unavailable("no handler bound to port"), {}, {}, 0};
  }
  IpcContext context{caller, port};
  return it->second.handler->Handle(context, message);
}

// ---------------------------------------------------------- Interposition

Result<uint64_t> Kernel::Interpose(ProcessId monitor, PortId port, Interceptor* interceptor) {
  if (!ports_.contains(port)) {
    return NotFound("no such port");
  }
  if (interceptor == nullptr) {
    return InvalidArgument("null interceptor");
  }
  // Interposition is itself a guarded operation: consent is expressed by a
  // goal formula on the port (§3.2).
  Status authorized = Authorize(monitor, "interpose", "port:" + std::to_string(port));
  if (!authorized.ok()) {
    return authorized;
  }
  uint64_t token = next_interpose_token_++;
  interpositions_.push_back(Interposition{token, port, monitor, interceptor});
  return token;
}

Status Kernel::RemoveInterposition(uint64_t token) {
  for (auto it = interpositions_.begin(); it != interpositions_.end(); ++it) {
    if (it->token == token) {
      interpositions_.erase(it);
      return OkStatus();
    }
  }
  return NotFound("no such interposition");
}

Result<PortId> Kernel::SyscallPort(ProcessId pid) {
  auto it = syscall_ports_.find(pid);
  if (it != syscall_ports_.end()) {
    return it->second;
  }
  if (!IsAlive(pid)) {
    return NotFound("no such process");
  }
  Result<PortId> port = CreatePort(kKernelProcessId);
  if (!port.ok()) {
    return port;
  }
  syscall_ports_[pid] = *port;
  return *port;
}

// -------------------------------------------------------------- Syscalls

IpcReply Kernel::Invoke(ProcessId caller, Syscall call, const IpcMessage& message) {
  auto proc_it = processes_.find(caller);
  if (proc_it == processes_.end() || !proc_it->second.alive) {
    return IpcReply{NotFound("no such process"), {}, {}, 0};
  }
  const Process& proc = proc_it->second;
  if (proc.allowed_syscalls.has_value() && !proc.allowed_syscalls->contains(call)) {
    return IpcReply{PermissionDenied("system call relinquished"), {}, {}, 0};
  }

  IpcMessage working = message;
  if (interposition_enabled_) {
    // Per-syscall parameter marshaling plus the process's syscall-channel
    // interceptor chain.
    Bytes wire = MarshalMessage(message);
    Result<IpcMessage> unmarshaled = UnmarshalMessage(wire);
    if (!unmarshaled.ok()) {
      return IpcReply{unmarshaled.status(), {}, {}, 0};
    }
    working = std::move(*unmarshaled);
    auto sys_port = syscall_ports_.find(caller);
    if (sys_port != syscall_ports_.end()) {
      IpcContext context{caller, sys_port->second};
      working.operation = std::string(SyscallName(call));
      for (auto it = interpositions_.rbegin(); it != interpositions_.rend(); ++it) {
        if (it->port == sys_port->second &&
            it->interceptor->OnCall(context, working) == InterposeVerdict::kDeny) {
          return IpcReply{PermissionDenied("blocked by reference monitor"), {}, {}, 0};
        }
      }
    }
  }

  switch (call) {
    case Syscall::kNull:
      return IpcReply{OkStatus(), {}, {}, 0};
    case Syscall::kGetPpid:
      return IpcReply{OkStatus(), {}, {}, static_cast<int64_t>(proc.parent)};
    case Syscall::kGetTimeOfDay:
      return IpcReply{OkStatus(), {}, {}, static_cast<int64_t>(NowMicros())};
    case Syscall::kYield: {
      Result<ProcessId> next = scheduler_->Tick();
      return IpcReply{OkStatus(), {}, {},
                      next.ok() ? static_cast<int64_t>(*next) : static_cast<int64_t>(caller)};
    }
    case Syscall::kOpen:
    case Syscall::kClose:
    case Syscall::kRead:
    case Syscall::kWrite: {
      if (fs_port_ == 0) {
        return IpcReply{Unavailable("no filesystem server"), {}, {}, 0};
      }
      IpcMessage forwarded = working;
      forwarded.operation = std::string(SyscallName(call));
      // Client-server microkernel architecture: the file operation is one
      // more IPC hop to the user-level server (Table 1's 2-3x).
      return Call(caller, fs_port_, forwarded);
    }
    case Syscall::kProcRead: {
      if (working.args.empty()) {
        return IpcReply{InvalidArgument("proc_read needs a path"), {}, {}, 0};
      }
      Status authorized = Authorize(caller, "read", "proc:" + working.args[0]);
      if (!authorized.ok()) {
        return IpcReply{authorized, {}, {}, 0};
      }
      Result<std::string> value = procfs_.Read(working.args[0]);
      if (!value.ok()) {
        return IpcReply{value.status(), {}, {}, 0};
      }
      return IpcReply{OkStatus(), *value, {}, 0};
    }
    case Syscall::kIpcCall: {
      if (working.args.empty()) {
        return IpcReply{InvalidArgument("ipc_call needs a port"), {}, {}, 0};
      }
      // args[0] is caller-controlled: parse defensively (stoull would throw
      // out of the kernel on "garbage" or a 100-digit number).
      std::optional<uint64_t> parsed_port = ParseDecimalU64(working.args[0]);
      if (!parsed_port.has_value()) {
        return IpcReply{InvalidArgument("ipc_call: port must be a decimal id"), {}, {}, 0};
      }
      PortId port = static_cast<PortId>(*parsed_port);
      IpcMessage inner = working;
      inner.args.erase(inner.args.begin());
      if (!inner.args.empty()) {
        inner.operation = inner.args.front();
        inner.args.erase(inner.args.begin());
      }
      return Call(caller, port, inner);
    }
    case Syscall::kSay:
    case Syscall::kSetGoal:
    case Syscall::kSetProof:
    case Syscall::kInterpose:
      // Control operations are handled by the core layer (which owns label
      // and goal stores); reaching the raw kernel is a wiring error.
      return IpcReply{Unavailable("control syscall not wired to an authorization engine"),
                      {},
                      {},
                      0};
  }
  return IpcReply{Internal("unhandled syscall"), {}, {}, 0};
}

// ---------------------------------------------------------- Authorization

Status Kernel::Authorize(const AuthzRequest& request) {
  if (engine_ == nullptr) {
    return OkStatus();  // Authorization disabled (Fig. 4 case "system call").
  }
  if (decision_cache_enabled_) {
    std::optional<bool> cached = decision_cache_.Lookup(request);
    if (cached.has_value()) {
      return *cached ? OkStatus()
                     : PermissionDenied("denied (cached guard decision)");
    }
  }
  // The engine upcall runs outside the cache locks, so a concurrent
  // setgoal/setproof can invalidate this tuple's subregion mid-evaluation.
  // Snapshot the subregion generation first; InsertIfUnchanged drops the
  // verdict if an invalidation raced it, so a stale decision is recomputed
  // on the next miss instead of cached past its goal change.
  uint64_t generation =
      decision_cache_enabled_ ? decision_cache_.Generation(request) : 0;
  AuthzDecision decision = engine_->Authorize(request);
  if (decision_cache_enabled_ && decision.cacheable) {
    decision_cache_.InsertIfUnchanged(request, decision.allowed(), generation);
  }
  return decision.ToStatus();
}

std::vector<Status> Kernel::AuthorizeBatch(std::span<const AuthzRequest> requests) {
  std::vector<Status> results(requests.size());
  if (engine_ == nullptr) {
    return results;  // Value-initialized Status is OK.
  }
  std::vector<AuthzRequest> misses;
  std::vector<size_t> miss_slots;
  std::vector<uint64_t> miss_generations;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (decision_cache_enabled_) {
      std::optional<bool> cached = decision_cache_.Lookup(requests[i]);
      if (cached.has_value()) {
        results[i] =
            *cached ? OkStatus() : PermissionDenied("denied (cached guard decision)");
        continue;
      }
    }
    misses.push_back(requests[i]);
    miss_slots.push_back(i);
    // Snapshot before the engine upcall: see Authorize for the stale-insert
    // race this closes.
    miss_generations.push_back(
        decision_cache_enabled_ ? decision_cache_.Generation(requests[i]) : 0);
  }
  if (misses.empty()) {
    return results;
  }
  std::vector<AuthzDecision> decisions = engine_->AuthorizeBatch(misses);
  for (size_t j = 0; j < misses.size(); ++j) {
    if (decision_cache_enabled_ && decisions[j].cacheable) {
      decision_cache_.InsertIfUnchanged(misses[j], decisions[j].allowed(),
                                        miss_generations[j]);
    }
    results[miss_slots[j]] = decisions[j].ToStatus();
  }
  return results;
}

void Kernel::OnProofUpdate(const AuthzRequest& request) {
  decision_cache_.InvalidateEntry(request);
}

void Kernel::OnGoalUpdate(OpId op, ObjectId obj) {
  decision_cache_.InvalidateSubregion(op, obj);
}

void Kernel::ReplaceScheduler(std::unique_ptr<Scheduler> scheduler) {
  scheduler_ = std::move(scheduler);
}

}  // namespace nexus::kernel
