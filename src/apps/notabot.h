// Not-A-Bot (§4): human-presence attestation against spam.
//
// The keyboard driver counts physical keypresses per session and issues a
// TPM-backed label attesting the count; mail carries the externalized
// certificate, and the receiving spam classifier treats human-typed mail
// preferentially. A bot can send mail, but it cannot mint keypress labels:
// only the (DDRM-constrained) keyboard driver process can.
#ifndef NEXUS_APPS_NOTABOT_H_
#define NEXUS_APPS_NOTABOT_H_

#include <map>
#include <string>

#include "core/nexus.h"

namespace nexus::apps {

class KeyboardDriver {
 public:
  KeyboardDriver(core::Nexus* nexus, kernel::ProcessId self) : nexus_(nexus), self_(self) {}

  // A hardware keypress interrupt for a session (only the driver sees
  // these; applications cannot call this path).
  void OnKeypress(const std::string& session);
  uint64_t Count(const std::string& session) const;

  // Issues <driver> says keypresses(<session>, <count>) and externalizes it
  // into a TPM-rooted certificate the mail can carry.
  Result<core::Certificate> AttestSession(const std::string& session);

 private:
  core::Nexus* nexus_;
  kernel::ProcessId self_;
  std::map<std::string, uint64_t> counts_;
};

struct Email {
  std::string from;
  std::string body;
  // Optional human-presence certificate (serialized).
  Bytes presence_cert;
};

class SpamClassifier {
 public:
  // `trusted_ek` roots certificate verification; `min_keypresses` is the
  // human-presence threshold.
  SpamClassifier(crypto::RsaPublicKey trusted_ek, uint64_t min_keypresses)
      : trusted_ek_(std::move(trusted_ek)), min_keypresses_(min_keypresses) {}

  // Returns true if the mail is classified as spam. Mails with a valid
  // presence certificate above threshold are ham; everything else falls
  // back to a crude content heuristic.
  bool IsSpam(const Email& email) const;

 private:
  crypto::RsaPublicKey trusted_ek_;
  uint64_t min_keypresses_;
};

}  // namespace nexus::apps

#endif  // NEXUS_APPS_NOTABOT_H_
