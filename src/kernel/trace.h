// The flight recorder: per-call decision provenance (ROADMAP "trace
// checking" substrate).
//
// Fixed-size per-thread ring buffers of POD TraceEvents, emitted at every
// stage an authorization decision passes through — Kernel::Call/Invoke,
// the decision-cache probe, the engine miss, the guard check, designated-
// guard upcalls, and remote-authority vouches — and correlated by a
// per-call trace id threaded through the call (a thread-local scope plus
// the AuthzRequest.trace field). One interposed fileserver read therefore
// yields its full provenance chain: Call -> cache probe -> engine miss ->
// guard check -> verdict.
//
// Cost model: the recorder is OFF by default. Disabled, every emission
// site pays one relaxed atomic load (and TraceScope two thread-local
// moves). Enabled, an emit is ~10 atomic stores into the calling thread's
// own ring — no locks, no allocation, no cross-thread contention, and NO
// cycle-counter read: event timestamps are per-ring sequence numbers
// (exact order within a thread — and a trace's synchronous stages run on
// one thread — approximate across rings). rdtsc, which costs more than a
// whole emit on virtualized hosts, is paid only on paths that already
// cross the engine (miss evaluation, syscall dispatch), where its cost
// disappears into microseconds of real work. That is what keeps the
// traced fig7 kref-min overhead inside the <=5% budget.
//
// Concurrency: each ring has exactly one writer (its thread); readers
// (Recent(), the proc:/trace/recent node) validate each slot with a
// per-slot sequence word, seqlock-style, over all-atomic slot words — so
// a reader racing the writer drops the in-flight slot instead of tearing
// it, and TSan sees only atomics. Rings are owned by the recorder and
// recycled through a free list when threads exit; they are never freed,
// so a reader can never touch a dead ring.
#ifndef NEXUS_KERNEL_TRACE_H_
#define NEXUS_KERNEL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "kernel/types.h"
#include "util/cycles.h"

namespace nexus::kernel {

// Where in the decision pipeline an event was emitted.
enum class TraceStage : uint8_t {
  kCall = 1,        // Kernel::Call completed (aux = port).
  kSyscall,         // Kernel::Invoke dispatched (aux = syscall number).
  kCacheProbe,      // Decision-cache lookup (generation = subregion gen).
  kEngineMiss,      // Engine::Authorize evaluating a miss.
  kGuardCheck,      // Guard::CheckImpl verdict (aux = consulted authorities,
                    // generation = goal FormulaId the guard evaluated).
  kGuardUpcall,     // Designated-guard IPC upcall (aux = guard port).
  kRemoteVouch,     // Remote-authority round trip (aux = statement count).
  kVerdict,         // Kernel::Authorize final answer (latency = miss-path
                    // evaluation cycles, 0 on a cache hit; generation = the
                    // subregion generation the verdict is valid under — the
                    // probe generation on a hit, re-read after the engine
                    // returned on a miss).
  kReplyInterpose,  // Reply-direction interceptor traversal completed
                    // (aux = port). Emitted AFTER the monitors ran, so the
                    // auditor can require it on every completed interposed
                    // call: a reply the chain never saw has no such event.
  kRemoteInvalidate,  // A peer instance's goal/proof mutation retired this
                      // instance's cached verdicts for (op, obj) (aux = the
                      // origin's invalidation epoch, generation = max
                      // post-bump subregion generation). Emitted AFTER the
                      // subregion bump, so any later verdict on the emitting
                      // thread observes at least the stamped generations —
                      // the ordering the auditor's stale-remote-verdict rule
                      // relies on (see harness/auditor.cc).
};

inline constexpr uint16_t kTraceFlagCacheHit = 1u << 0;
inline constexpr uint16_t kTraceFlagCacheMiss = 1u << 1;
inline constexpr uint16_t kTraceFlagRemote = 1u << 2;
inline constexpr uint16_t kTraceFlagInterposed = 1u << 3;
inline constexpr uint16_t kTraceFlagUpcall = 1u << 4;
inline constexpr uint16_t kTraceFlagDenied = 1u << 5;
inline constexpr uint16_t kTraceFlagProofCacheHit = 1u << 6;
inline constexpr uint16_t kTraceFlagUncacheable = 1u << 7;
// The call entered the kernel through a CallMany batch (one boundary
// crossing shared by every message carrying this flag's trace id).
inline constexpr uint16_t kTraceFlagBatched = 1u << 8;

// Verdict byte: 0 = not a verdict-carrying stage.
inline constexpr uint8_t kTraceVerdictNone = 0;
inline constexpr uint8_t kTraceVerdictAllow = 1;
inline constexpr uint8_t kTraceVerdictDeny = 2;

struct TraceEvent {
  uint64_t trace_id = 0;   // Correlates all stages of one call; 0 = untraced.
  uint64_t timestamp = 0;  // Per-ring sequence number assigned at emit
                           // (ordering key, not wall time; see file comment).
  ProcessId subject = 0;
  OpId op = 0;
  ObjectId obj = 0;
  uint64_t generation = 0;  // Cache subregion generation (kCacheProbe).
  uint64_t aux = 0;         // Stage-specific (see TraceStage).
  uint32_t latency = 0;     // Stage latency in cycles, 0 if not measured.
  uint16_t flags = 0;
  uint8_t verdict = kTraceVerdictNone;
  TraceStage stage = TraceStage::kCall;
};

std::string_view TraceStageName(TraceStage stage);
// Human/procfs rendering, one "trace=<id> stage=<name> ..." line per event.
std::string FormatTraceEvents(const std::vector<TraceEvent>& events);

class FlightRecorder {
 public:
  // Slots per ring; power of two. One slot is one 64-byte cache line, so
  // a ring is 16 KiB — deliberately smaller than L1d: the writer cycles
  // through it continuously, and a larger ring measurably taxes the
  // traced hot path by evicting the payload working set (the fig7 1500B
  // overhead nearly doubled with 64 KiB rings).
  static constexpr size_t kRingCapacity = 256;

  static FlightRecorder& Global();

  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Unique, not globally ordered: each thread takes a block of ids with
  // one fetch_add and hands them out locally — a locked RMW per traced
  // root call would cost as much as the emit itself on this host.
  uint64_t NewTraceId();

  // Records `event` into the calling thread's ring (no-op when disabled).
  void Emit(const TraceEvent& event);

  // The most recent events across every ring (merged, timestamp order,
  // last `max` kept). A slot being overwritten mid-read is dropped.
  std::vector<TraceEvent> Recent(size_t max = kRingCapacity) const;
  // All retained events of one trace, in timestamp order.
  std::vector<TraceEvent> ForTrace(uint64_t trace_id) const;

  // --- Cursor-based harvest (the auditor-facing drain API) -------------
  //
  // Recent() is a snapshot: a soak emitting millions of events through
  // 256-slot rings loses everything between two snapshots to wraparound.
  // Drain() instead remembers, per ring, the next sequence number to read
  // and returns only new events — called often enough it observes every
  // event; called too rarely it reports exactly how many were overwritten
  // (`dropped`) so the consumer knows its coverage.
  //
  // Events are returned per ring (one DrainedSegment per ring with news),
  // NOT merged: per-ring order is the only exact order the recorder has
  // (timestamps are ring-local sequence numbers), and the auditor's
  // chain-completeness and monotonicity checks depend on it. begin_seq is
  // the timestamp the segment's first event would carry if no slot was
  // skipped mid-write, so a consumer can detect front truncation.
  struct DrainedSegment {
    size_t ring = 0;          // Stable ring index (rings are never freed).
    uint64_t begin_seq = 0;   // Expected timestamp of events.front().
    // True when NOTHING was lost before begin_seq: the cursor is
    // contiguous with its previous visit, or the ring genuinely starts
    // here (seq 1 / deliberate Clear). False when the writer wrapped past
    // unread history — a cursor's FIRST visit to a busy ring may already
    // be missing the head of its oldest retained trace, which a consumer
    // cannot detect from begin_seq alone (there was no previous visit to
    // be contiguous with).
    bool lossless_start = false;
    std::vector<TraceEvent> events;
  };
  struct DrainStats {
    uint64_t drained = 0;  // Events appended to `out` by this call.
    uint64_t dropped = 0;  // Events overwritten before they could be read.
  };
  // Opaque per-consumer position; value-initialized cursor = "start now"
  // (the first Drain returns what the rings currently retain, with
  // nothing counted as dropped — history before the cursor existed is not
  // a drop). Each consumer owns its cursor; Drain itself is thread-safe.
  class DrainCursor {
   public:
    DrainCursor() = default;

   private:
    friend class FlightRecorder;
    std::vector<uint64_t> next_;  // Per ring: next sequence index to read.
  };
  DrainStats Drain(DrainCursor* cursor, std::vector<DrainedSegment>* out) const;

  // Logically drops all retained events (readers skip them; writers are
  // not disturbed).
  void Clear();

  // Total events ever emitted (including overwritten ones).
  uint64_t events_emitted() const;
  size_t ring_count() const;

 private:
  struct Slot {
    // Seqlock per slot: odd = write in progress, even 2*(n+1) = generation
    // of the n-th write. All-atomic payload words keep readers race-free;
    // a torn read is rejected by the sequence check, never observed.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> word[7] = {};
  };
  struct Ring {
    std::atomic<uint64_t> head{0};           // Next slot index (monotonic).
    std::atomic<uint64_t> cleared_below{0};  // Readers skip indices below.
    std::vector<Slot> slots{kRingCapacity};
  };

  FlightRecorder() = default;

  Ring* RingForThisThread();
  Ring* AcquireRing();
  void ReleaseRing(Ring* ring);
  // Seqlock-validated read of ring indices [from, head); appends to out.
  void ReadRing(const Ring& ring, std::vector<TraceEvent>* out) const;
  // Seqlock-validated read of ring indices [from, to); appends to out.
  void ReadRingRange(const Ring& ring, uint64_t from, uint64_t to,
                     std::vector<TraceEvent>* out) const;

  struct ThreadRingSlot;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_trace_id_{1};
  mutable std::mutex rings_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;  // All rings ever created.
  std::vector<Ring*> free_rings_;             // Returned by exited threads.
};

// --- Mutation log -----------------------------------------------------
//
// The flight recorder captures the READ side of the decision plane; the
// mutation log captures the WRITE side: every SetGoal/ClearGoal/SetProof/
// ClearProof/Say the engine applies, stamped with the EXACT post-bump
// decision-cache subregion generations of its invalidation (captured
// under the bumping shard's lock, so stamps cannot overshoot concurrent
// bumps — see DecisionCache::InvalidateSubregion).
// A trace auditor joins the two by generation: a verdict event carrying
// generation g was computed against the state between the last mutation
// whose stamp is <= g and the next one — which is exactly what a
// single-threaded replay of the mutation sequence would have produced,
// so serializability is checkable after the fact.
//
// Mutations are control-plane rate (a setgoal per policy flip, not per
// call), so a mutex over a bounded deque is the right shape — no seqlock
// heroics. Off by default, like the recorder.

enum class MutationKind : uint8_t {
  kSetGoal = 1,
  kClearGoal,
  kSetProof,
  kClearProof,
  kSay,
  // A cross-node invalidation applied by the mesh (src/net/mesh): a peer's
  // goal/proof mutation, replayed here as a subregion clear. `detail` is
  // the origin's epoch; `generations` are the exact post-bump stamps, same
  // contract as local goal mutations. Not a goal CHANGE from the auditor's
  // perspective (the goal text lives on the origin node) — it only moves
  // the generation frontier.
  kRemoteInvalidate,
};

std::string_view MutationKindName(MutationKind kind);

struct MutationRecord {
  uint64_t seq = 0;      // Log order, assigned by Append (1-based).
  MutationKind kind = MutationKind::kSetGoal;
  ProcessId subject = 0;  // Proof mutations; 0 otherwise.
  OpId op = 0;            // Subregion key (goal/proof mutations); 0 for Say.
  ObjectId obj = 0;
  uint64_t detail = 0;   // Goal FormulaId (kSetGoal), said FormulaId (kSay).
  // Exact post-bump decision-cache generation of the mutated subregion,
  // per shard (for single-entry proof invalidations, exact on the
  // subject's shard; best-effort elsewhere). Empty for kSay (labels are
  // append-only and do not invalidate cached verdicts).
  std::vector<uint64_t> generations;
};

class MutationLog {
 public:
  static MutationLog& Global();

  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Appends (assigns record.seq). Over capacity the oldest records are
  // dropped and counted. Thread-safe.
  uint64_t Append(MutationRecord record);

  // Appends every record with seq > *cursor to `out` and advances the
  // cursor. A value-initialized cursor (0) drains from the oldest retained
  // record. Thread-safe; each consumer owns its cursor.
  size_t DrainFrom(uint64_t* cursor, std::vector<MutationRecord>* out) const;

  void Clear();
  void set_capacity(size_t capacity);

  uint64_t appended() const;
  uint64_t dropped() const;
  size_t size() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::deque<MutationRecord> records_;
  size_t capacity_ = 1 << 16;
  uint64_t next_seq_ = 1;
  uint64_t dropped_ = 0;
};

// The calling thread's active trace id (0 outside any traced call).
uint64_t CurrentTraceId();

// RAII trace correlation for a kernel entry point: when the recorder is
// enabled, adopts the surrounding trace id (nested Calls share the root's
// id) or allocates a fresh one at the root. Disabled, it costs one relaxed
// load and two thread-local moves; enabled, it adds only the id handling —
// deliberately no cycle read (see the cost model above). Sites that want a
// stage latency read the counter themselves on their slow path.
class TraceScope {
 public:
  TraceScope();
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  bool active() const { return id_ != 0; }
  uint64_t id() const { return id_; }

 private:
  uint64_t saved_ = 0;
  uint64_t id_ = 0;
};

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_TRACE_H_
