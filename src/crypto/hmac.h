// HMAC-SHA256 (RFC 2104). Used for keyed integrity tags on storage metadata.
#ifndef NEXUS_CRYPTO_HMAC_H_
#define NEXUS_CRYPTO_HMAC_H_

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace nexus::crypto {

Sha256Digest HmacSha256(ByteView key, ByteView message);

// Convenience wrapper returning Bytes.
Bytes HmacSha256Bytes(ByteView key, ByteView message);

}  // namespace nexus::crypto

#endif  // NEXUS_CRYPTO_HMAC_H_
