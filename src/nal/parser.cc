#include "nal/parser.h"

#include <cctype>
#include <optional>
#include <vector>

namespace nexus::nal {

namespace {

enum class TokenKind {
  kIdent,    // bare identifier, may contain '/', ':', '-'
  kInt,
  kString,   // double-quoted
  kVariable, // $X
  kLParen,
  kRParen,
  kComma,
  kDot,
  kRelOp,    // < <= = >= > !=
  kImplies,  // =>
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  int64_t int_value = 0;
  size_t position = 0;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '/' || c == ':' ||
         c == '-';
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      size_t start = pos_;
      if (c == '(') {
        tokens.push_back({TokenKind::kLParen, "(", 0, start});
        ++pos_;
      } else if (c == ')') {
        tokens.push_back({TokenKind::kRParen, ")", 0, start});
        ++pos_;
      } else if (c == ',') {
        tokens.push_back({TokenKind::kComma, ",", 0, start});
        ++pos_;
      } else if (c == '.') {
        tokens.push_back({TokenKind::kDot, ".", 0, start});
        ++pos_;
      } else if (c == '$') {
        ++pos_;
        std::string name = ReadIdent();
        if (name.empty()) {
          return InvalidArgument("expected variable name after '$' at position " +
                                 std::to_string(start));
        }
        tokens.push_back({TokenKind::kVariable, name, 0, start});
      } else if (c == '"') {
        ++pos_;
        std::string value;
        while (pos_ < text_.size() && text_[pos_] != '"') {
          value.push_back(text_[pos_]);
          ++pos_;
        }
        if (pos_ == text_.size()) {
          return InvalidArgument("unterminated string literal at position " +
                                 std::to_string(start));
        }
        ++pos_;  // Closing quote.
        tokens.push_back({TokenKind::kString, value, 0, start});
      } else if (c == '=' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
        tokens.push_back({TokenKind::kImplies, "=>", 0, start});
        pos_ += 2;
      } else if (c == '<' || c == '>' || c == '=' || c == '!') {
        std::string op(1, c);
        ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '=') {
          op.push_back('=');
          ++pos_;
        }
        if (op == "!") {
          return InvalidArgument("unexpected '!' at position " + std::to_string(start));
        }
        tokens.push_back({TokenKind::kRelOp, op, 0, start});
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        bool negative = c == '-';
        if (negative) {
          ++pos_;
        }
        int64_t value = 0;
        size_t digits_start = pos_;
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          value = value * 10 + (text_[pos_] - '0');
          ++pos_;
        }
        // An identifier like "2fast/path" starting with a digit: backtrack
        // and lex as an identifier when identifier characters follow.
        if (pos_ < text_.size() && IsIdentChar(text_[pos_]) && !negative) {
          pos_ = digits_start;
          std::string ident = ReadIdent();
          tokens.push_back({TokenKind::kIdent, ident, 0, start});
        } else {
          tokens.push_back({TokenKind::kInt, "", negative ? -value : value, start});
        }
      } else if (IsIdentChar(c)) {
        std::string ident = ReadIdent();
        tokens.push_back({TokenKind::kIdent, ident, 0, start});
      } else {
        return InvalidArgument("unexpected character '" + std::string(1, c) + "' at position " +
                               std::to_string(start));
      }
    }
    tokens.push_back({TokenKind::kEnd, "", 0, text_.size()});
    return tokens;
  }

 private:
  std::string ReadIdent() {
    std::string out;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) {
      out.push_back(text_[pos_]);
      ++pos_;
    }
    return out;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Formula> Parse() {
    Result<Formula> f = ParseImplies();
    if (!f.ok()) {
      return f;
    }
    if (Current().kind != TokenKind::kEnd) {
      return Error("trailing input");
    }
    return f;
  }

 private:
  const Token& Current() const { return tokens_[index_]; }
  const Token& Peek(size_t ahead = 1) const {
    size_t i = index_ + ahead;
    return tokens_[std::min(i, tokens_.size() - 1)];
  }
  void Advance() {
    if (index_ + 1 < tokens_.size()) {
      ++index_;
    }
  }
  bool ConsumeKeyword(std::string_view kw) {
    if (Current().kind == TokenKind::kIdent && Current().text == kw) {
      Advance();
      return true;
    }
    return false;
  }
  Status Error(const std::string& what) const {
    return InvalidArgument(what + " at position " + std::to_string(Current().position));
  }

  Result<Formula> ParseImplies() {
    Result<Formula> lhs = ParseOr();
    if (!lhs.ok()) {
      return lhs;
    }
    if (Current().kind == TokenKind::kImplies) {
      Advance();
      Result<Formula> rhs = ParseImplies();  // Right associative.
      if (!rhs.ok()) {
        return rhs;
      }
      return FormulaNode::Implies(*lhs, *rhs);
    }
    return lhs;
  }

  Result<Formula> ParseOr() {
    Result<Formula> lhs = ParseAnd();
    if (!lhs.ok()) {
      return lhs;
    }
    Formula acc = *lhs;
    while (ConsumeKeyword("or")) {
      Result<Formula> rhs = ParseAnd();
      if (!rhs.ok()) {
        return rhs;
      }
      acc = FormulaNode::Or(acc, *rhs);
    }
    return acc;
  }

  Result<Formula> ParseAnd() {
    Result<Formula> lhs = ParseUnary();
    if (!lhs.ok()) {
      return lhs;
    }
    Formula acc = *lhs;
    while (ConsumeKeyword("and")) {
      Result<Formula> rhs = ParseUnary();
      if (!rhs.ok()) {
        return rhs;
      }
      acc = FormulaNode::And(acc, *rhs);
    }
    return acc;
  }

  Result<Formula> ParseUnary() {
    if (ConsumeKeyword("not")) {
      Result<Formula> f = ParseUnary();
      if (!f.ok()) {
        return f;
      }
      return FormulaNode::Not(*f);
    }
    return ParseStatement();
  }

  // A statement begins with a principal (says/speaksfor), a term (compare),
  // a predicate, or a parenthesized formula.
  Result<Formula> ParseStatement() {
    if (Current().kind == TokenKind::kLParen) {
      Advance();
      Result<Formula> inner = ParseImplies();
      if (!inner.ok()) {
        return inner;
      }
      if (Current().kind != TokenKind::kRParen) {
        return Error("expected ')'");
      }
      Advance();
      return MaybeSaysSuffix(*inner);
    }
    if (Current().kind == TokenKind::kIdent && Current().text == "true" &&
        Peek().kind != TokenKind::kLParen) {
      Advance();
      return FormulaNode::True();
    }
    if (Current().kind == TokenKind::kIdent && Current().text == "false" &&
        Peek().kind != TokenKind::kLParen) {
      Advance();
      return FormulaNode::False();
    }

    // Predicate application: IDENT '(' ...
    if (Current().kind == TokenKind::kIdent && Peek().kind == TokenKind::kLParen) {
      return ParsePredicate();
    }

    // Otherwise parse a term and dispatch on what follows.
    Result<Term> first = ParseTerm();
    if (!first.ok()) {
      return first.status();
    }

    if (Current().kind == TokenKind::kIdent && Current().text == "says") {
      Advance();
      Result<Principal> speaker = TermAsPrincipal(*first);
      if (!speaker.ok()) {
        return speaker.status();
      }
      Result<Formula> body = ParseUnary();
      if (!body.ok()) {
        return body;
      }
      return FormulaNode::Says(*speaker, *body);
    }

    if (Current().kind == TokenKind::kIdent && Current().text == "speaksfor") {
      Advance();
      Result<Principal> a = TermAsPrincipal(*first);
      if (!a.ok()) {
        return a.status();
      }
      Result<Term> b_term = ParseTerm();
      if (!b_term.ok()) {
        return b_term.status();
      }
      Result<Principal> b = TermAsPrincipal(*b_term);
      if (!b.ok()) {
        return b.status();
      }
      std::optional<std::string> scope;
      if (ConsumeKeyword("on")) {
        if (Current().kind != TokenKind::kIdent) {
          return Error("expected scope identifier after 'on'");
        }
        scope = Current().text;
        Advance();
      }
      return FormulaNode::SpeaksFor(*a, *b, scope);
    }

    if (Current().kind == TokenKind::kRelOp) {
      CompareOp op;
      const std::string& sym = Current().text;
      if (sym == "<") {
        op = CompareOp::kLt;
      } else if (sym == "<=") {
        op = CompareOp::kLe;
      } else if (sym == "=") {
        op = CompareOp::kEq;
      } else if (sym == ">=") {
        op = CompareOp::kGe;
      } else if (sym == ">") {
        op = CompareOp::kGt;
      } else if (sym == "!=") {
        op = CompareOp::kNe;
      } else {
        return Error("unknown comparison operator '" + sym + "'");
      }
      Advance();
      Result<Term> rhs = ParseTerm();
      if (!rhs.ok()) {
        return rhs.status();
      }
      return FormulaNode::Compare(op, *first, *rhs);
    }

    return Error("expected 'says', 'speaksfor', or a comparison");
  }

  // Allows "(F) ..." — no suffix operators exist after a parenthesized
  // formula, so this is the identity today; kept as a seam for group
  // principal syntax extensions.
  Result<Formula> MaybeSaysSuffix(Formula f) { return f; }

  Result<Formula> ParsePredicate() {
    std::string name = Current().text;
    Advance();  // IDENT
    Advance();  // '('
    std::vector<Term> args;
    if (Current().kind != TokenKind::kRParen) {
      for (;;) {
        Result<Term> t = ParseTerm();
        if (!t.ok()) {
          return t.status();
        }
        args.push_back(*t);
        if (Current().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (Current().kind != TokenKind::kRParen) {
      return Error("expected ')' after predicate arguments");
    }
    Advance();
    return FormulaNode::Pred(std::move(name), std::move(args));
  }

  Result<Term> ParseTerm() {
    const Token& tok = Current();
    switch (tok.kind) {
      case TokenKind::kInt: {
        int64_t v = tok.int_value;
        Advance();
        return Term::Int(v);
      }
      case TokenKind::kString: {
        std::string s = tok.text;
        Advance();
        return Term::String(s);
      }
      case TokenKind::kVariable: {
        std::string name = tok.text;
        Advance();
        return Term::Var(name);
      }
      case TokenKind::kIdent: {
        // A dotted chain is a principal; a single identifier doubles as a
        // symbol (Term equality treats the two as equivalent).
        std::string base = tok.text;
        Advance();
        std::vector<std::string> path;
        // Numeric path components ("IPC.5") lex as integer tokens.
        while (Current().kind == TokenKind::kDot &&
               (Peek().kind == TokenKind::kIdent || Peek().kind == TokenKind::kInt)) {
          Advance();  // '.'
          path.push_back(Current().kind == TokenKind::kInt
                             ? std::to_string(Current().int_value)
                             : Current().text);
          Advance();
        }
        if (path.empty()) {
          return Term::Symbol(base);
        }
        return Term::Prin(Principal(std::move(base), std::move(path)));
      }
      default:
        return Error("expected a term");
    }
  }

  Result<Principal> TermAsPrincipal(const Term& t) {
    switch (t.kind()) {
      case TermKind::kSymbol:
        return Principal(t.text());
      case TermKind::kPrincipal:
        return t.principal();
      case TermKind::kVariable:
        return Principal("$" + t.text());
      default:
        return InvalidArgument("term '" + t.ToString() + "' cannot be used as a principal");
    }
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

}  // namespace

Result<Formula> ParseFormula(std::string_view text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) {
    return tokens.status();
  }
  Parser parser(std::move(*tokens));
  return parser.Parse();
}

Result<Principal> ParsePrincipal(std::string_view text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  if (!tokens.ok()) {
    return tokens.status();
  }
  const std::vector<Token>& toks = *tokens;
  if (toks.empty() || toks[0].kind != TokenKind::kIdent) {
    return InvalidArgument("expected principal name");
  }
  std::string base = toks[0].text;
  std::vector<std::string> path;
  size_t i = 1;
  while (i + 1 < toks.size() && toks[i].kind == TokenKind::kDot &&
         (toks[i + 1].kind == TokenKind::kIdent || toks[i + 1].kind == TokenKind::kInt)) {
    path.push_back(toks[i + 1].kind == TokenKind::kInt ? std::to_string(toks[i + 1].int_value)
                                                       : toks[i + 1].text);
    i += 2;
  }
  if (toks[i].kind != TokenKind::kEnd) {
    return InvalidArgument("trailing input after principal name");
  }
  return Principal(std::move(base), std::move(path));
}

}  // namespace nexus::nal
