// IPC messages, ports, and handler interfaces — typed ABI v2.
//
// All interaction between Nexus processes flows through synchronous IPC
// calls on kernel-managed ports (§2.4). The kernel authoritatively binds a
// port to its owning process, which lets the authorization layer attribute
// statements arriving on a port to that process without cryptography.
//
// Parameter marshaling is the dominant fixed cost of interpositioning
// (§5.1), so the message itself is identity-based: the operation is an
// interned OpId and arguments travel in a fixed small vector of TYPED
// slots (ArgValue: u64 | ProcessId | PortId | ObjectId | FormulaId |
// bytes | string). An interposed call whose arguments are integers or
// interned ids builds, hashes, and parses ZERO heap strings end to end —
// the "stringify fd, re-parse fd" tax of the v1 string ABI is gone, and
// with it the scattered defensive ParseDecimalU64 call sites: the ONLY
// place untrusted decimal text becomes an integer is the string-slot
// coercion inside the Arg accessors here.
//
// Untrusted text boundaries (script-style callers, the ipc_call syscall)
// enter through IpcMessage::FromLegacy, which carries the operation NAME
// until the kernel resolves it against the caller's op-name quota
// (Kernel::InternOpCharged) — growth of the op intern table through the
// legacy surface is charged, never ambient.
#ifndef NEXUS_KERNEL_IPC_H_
#define NEXUS_KERNEL_IPC_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "kernel/payload.h"
#include "kernel/types.h"
#include "util/bytes.h"
#include "util/status.h"

namespace nexus::kernel {

// Wire tag of one argument slot. Values are part of the marshaled format;
// never renumber.
enum class ArgTag : uint8_t {
  kU64 = 1,      // plain unsigned integer (fds, offsets, lengths, counts)
  kProcess = 2,  // ProcessId
  kPort = 3,     // PortId
  kObject = 4,   // interned ObjectId (kernel/types.h ObjectTable)
  kFormula = 5,  // interned nal::FormulaId (resolved by the consumer)
  kBytes = 6,    // opaque byte payload
  kString = 7,   // text payload (paths, names, serialized proofs)
};

class ArgVec;

// A read-only view of one typed argument slot (valid while the owning
// ArgVec lives and is not mutated).
class ArgSlot {
 public:
  ArgTag tag() const;
  bool is_scalar() const { return tag() != ArgTag::kBytes && tag() != ArgTag::kString; }
  uint64_t scalar() const;
  // Valid for kString (text) / kBytes (blob) slots only.
  std::string_view text() const;
  ByteView blob() const;
  size_t payload_size() const { return text().size(); }

 private:
  friend class ArgVec;
  ArgSlot(const ArgVec* vec, size_t index) : vec_(vec), index_(index) {}
  const ArgVec* vec_;
  size_t index_;
};

// The fixed small vector of argument slots: POD slot headers inline, all
// text/bytes payloads packed into ONE shared, REF-COUNTED arena string. A
// scalar-only message owns no heap memory at all; copying a message with
// payloads bumps one refcount instead of duplicating the arena, and a
// reply can alias its request's arena outright (AddAliasedPayload) — the
// echo/redaction paths build zero new payload bytes. The arena is
// copy-on-write: appending through a SHARED arena clones it first, and
// payload slots are immutable once added (SetScalar refuses them), so an
// aliasing reply can never corrupt the request it borrowed from. Adds
// past capacity are refused (IpcMessage records the overflow and the
// kernel rejects such a message with InvalidArgument instead of silently
// dropping arguments at a security boundary).
class ArgVec {
 public:
  static constexpr size_t kMaxArgs = 8;

  ArgVec() = default;

  // Copies and moves transfer only the LIVE slots. The inline array is 192
  // bytes; messages on the hot path carry one or two slots, and the
  // monitor working copy + batched-submission staging sit directly on the
  // per-call critical path — copying dead capacity there is measurable.
  // Slots at index >= count_ are never read (class invariant: every
  // accessor bounds on count_), so they stay untouched garbage.
  ArgVec(const ArgVec& other) : count_(other.count_), arena_(other.arena_) {
    for (size_t i = 0; i < count_; ++i) {
      slots_[i] = other.slots_[i];
    }
  }
  ArgVec& operator=(const ArgVec& other) {
    count_ = other.count_;
    arena_ = other.arena_;
    for (size_t i = 0; i < count_; ++i) {
      slots_[i] = other.slots_[i];
    }
    return *this;
  }
  ArgVec(ArgVec&& other) noexcept : count_(other.count_), arena_(std::move(other.arena_)) {
    for (size_t i = 0; i < count_; ++i) {
      slots_[i] = other.slots_[i];
    }
    other.count_ = 0;
  }
  ArgVec& operator=(ArgVec&& other) noexcept {
    if (this != &other) {
      count_ = other.count_;
      arena_ = std::move(other.arena_);
      for (size_t i = 0; i < count_; ++i) {
        slots_[i] = other.slots_[i];
      }
      other.count_ = 0;
    }
    return *this;
  }

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  ArgSlot operator[](size_t i) const { return ArgSlot(this, i); }

  bool AddScalar(ArgTag tag, uint64_t value) {
    if (count_ >= kMaxArgs) {
      return false;
    }
    slots_[count_++] = Slot{tag, 0, 0, value};
    return true;
  }
  bool AddPayload(ArgTag tag, std::string_view payload);

  // Zero-copy slot alias: adds slot `i` of `source` (a payload slot) by
  // adopting its arena — no bytes move, no text-payload audit bump. Falls
  // back to a counted AddPayload copy when this vector already owns a
  // DIFFERENT arena (mixed provenance). The error-reply and echo paths
  // use this to carry request text back without rebuilding it.
  bool AddAliasedPayload(ArgTag tag, const ArgVec& source, size_t i);

  // In-place structural rewrite of one SCALAR slot — the reply-
  // interposition primitive (clamp a length, redact an ObjectId,
  // substitute a FormulaId) with zero reallocation. The tag is preserved;
  // payload slots refuse (monitors replace reply data wholesale rather
  // than splicing the shared arena).
  bool SetScalar(size_t i, uint64_t value) {
    if (i >= count_ || slots_[i].tag == ArgTag::kBytes ||
        slots_[i].tag == ArgTag::kString) {
      return false;
    }
    slots_[i].scalar = value;
    return true;
  }

  // The slots from index `from` on (the ipc_call syscall strips its port
  // and operation prefix before forwarding the inner message). Payload
  // slots ALIAS this vector's arena — the forwarded inner message shares
  // the outer one's bytes instead of re-materializing them.
  ArgVec Tail(size_t from) const {
    ArgVec out;
    for (size_t i = from; i < count_; ++i) {
      const Slot& s = slots_[i];
      if (s.tag == ArgTag::kBytes || s.tag == ArgTag::kString) {
        out.AddAliasedPayload(s.tag, *this, i);
      } else {
        out.AddScalar(s.tag, s.scalar);
      }
    }
    return out;
  }

  friend bool operator==(const ArgVec& a, const ArgVec& b) {
    if (a.count_ != b.count_) {
      return false;
    }
    for (size_t i = 0; i < a.count_; ++i) {
      const Slot& x = a.slots_[i];
      const Slot& y = b.slots_[i];
      if (x.tag != y.tag || x.scalar != y.scalar || a.PayloadOf(x) != b.PayloadOf(y)) {
        return false;
      }
    }
    return true;
  }

 private:
  friend class ArgSlot;
  struct Slot {
    ArgTag tag;
    uint32_t offset;  // into arena_, payload tags only
    uint32_t length;
    uint64_t scalar;
  };

  std::string_view PayloadOf(const Slot& s) const {
    if (arena_ == nullptr) {
      return std::string_view();
    }
    return std::string_view(*arena_).substr(s.offset, s.length);
  }

  // Clones the arena iff it is shared (copy-on-write before an append).
  void DetachArena();

  // Deliberately NOT value-initialized: only [0, count_) is ever live
  // (see the copy/move rationale above), and zeroing 192 bytes per
  // IpcMessage/IpcReply construction is pure hot-path waste.
  Slot slots_[kMaxArgs];
  uint8_t count_ = 0;
  // Ref-counted: copied ArgVecs (interposition working copies, aliasing
  // replies) share it. Null until the first payload slot.
  std::shared_ptr<std::string> arena_;
};

inline ArgTag ArgSlot::tag() const { return vec_->slots_[index_].tag; }
inline uint64_t ArgSlot::scalar() const { return vec_->slots_[index_].scalar; }
inline std::string_view ArgSlot::text() const {
  return vec_->PayloadOf(vec_->slots_[index_]);
}
inline ByteView ArgSlot::blob() const {
  std::string_view payload = text();
  return ByteView(reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
}

// Wire-format bounds, enforced strictly by UnmarshalMessage (and by
// MarshalMessage, so a hostile payload cannot even be emitted). A buffer
// that is truncated, carries trailing bytes, declares more slots than
// ArgVec::kMaxArgs, uses an unknown tag, or exceeds these payload caps is
// rejected with InvalidArgument — never partially decoded.
inline constexpr size_t kMaxArgPayload = 64 * 1024;        // per string/bytes slot
inline constexpr size_t kMaxIpcData = 16 * 1024 * 1024;    // trailing data block
inline constexpr size_t kMaxLegacyOpName = 256;            // FromLegacy op text

struct IpcMessage {
  // The interned operation (kernel/types.h OpTable). 0 is the empty name:
  // syscall messages that carry no operation of their own are well-formed.
  OpId op = 0;
  ArgVec args;
  // Ref-counted (kernel/payload.h): copying the message — the monitor
  // working copy, a batched submission — bumps a refcount; bytes move
  // only through the Payload class's counted copy-on-write surface.
  Payload data;

  IpcMessage() = default;
  explicit IpcMessage(OpId operation) : op(operation) {}

  // Trusted-producer constructors: interning here is NOT charged to any
  // quota (servers, monitors, and tests name their own vocabulary).
  static IpcMessage Of(OpId operation) { return IpcMessage(operation); }
  static IpcMessage Of(std::string_view operation) { return IpcMessage(InternOp(operation)); }

  // The legacy string shim — the ONLY place v1-style (operation string +
  // string args) messages are built. Args become kString slots. A never-
  // interned operation name is carried as text until the kernel resolves
  // it through the caller-charged op quota (Kernel::InternOpCharged);
  // already-interned names resolve immediately and cost nothing.
  static IpcMessage FromLegacy(std::string_view operation,
                               std::vector<std::string> legacy_args = {}, Payload data = {});

  std::string_view operation() const {
    return needs_op_resolution() ? std::string_view(legacy_op_) : OpName(op);
  }

  // ---- Builders (chainable). Capacity overflow is recorded, not dropped.
  IpcMessage& AddU64(uint64_t v) { return AddScalar(ArgTag::kU64, v); }
  IpcMessage& AddProcess(ProcessId v) { return AddScalar(ArgTag::kProcess, v); }
  IpcMessage& AddPort(PortId v) { return AddScalar(ArgTag::kPort, v); }
  IpcMessage& AddObject(ObjectId v) { return AddScalar(ArgTag::kObject, v); }
  IpcMessage& AddFormula(uint64_t v) { return AddScalar(ArgTag::kFormula, v); }
  IpcMessage& AddString(std::string_view v) { return AddPayload(ArgTag::kString, v); }
  IpcMessage& AddBytes(ByteView v) {
    return AddPayload(ArgTag::kBytes,
                      std::string_view(reinterpret_cast<const char*>(v.data()), v.size()));
  }
  IpcMessage& AddScalar(ArgTag tag, uint64_t v) {
    if (!args.AddScalar(tag, v)) {
      args_overflowed_ = true;
    }
    return *this;
  }
  IpcMessage& AddPayload(ArgTag tag, std::string_view v) {
    if (!args.AddPayload(tag, v)) {
      args_overflowed_ = true;
    }
    return *this;
  }

  // ---- Typed accessors. Status-returning, never throwing. Scalar
  // accessors accept EXACTLY the matching tag plus kU64 (the generic
  // integer) — a slot tagged kObject does not read back as a port;
  // additionally, ArgU64/ArgProcess/ArgPort accept a kString slot holding
  // decimal text — THE single validated decode point for untrusted legacy
  // text (ParseDecimalU64 lives behind it and nowhere else). ArgObject
  // re-validates a kU64-sourced id against the object table (unknown
  // objects fail OPEN in the bootstrap policy, so a forged id must not
  // ride in through the generic-integer coercion) and never coerces text:
  // names must enter through the charged intern surfaces.
  Result<uint64_t> ArgU64(size_t i) const;
  Result<ProcessId> ArgProcess(size_t i) const;
  Result<PortId> ArgPort(size_t i) const;
  Result<ObjectId> ArgObject(size_t i) const;
  Result<uint64_t> ArgFormula(size_t i) const;
  Result<std::string_view> ArgString(size_t i) const;
  Result<ByteView> ArgBytes(size_t i) const;

  bool ArgIsString(size_t i) const {
    return i < args.size() && args[i].tag() == ArgTag::kString;
  }
  // True when any slot carries a text/bytes payload — the arg-type audit
  // hook for the zero-string hot-path assertion.
  bool HasTextArgs() const {
    for (size_t i = 0; i < args.size(); ++i) {
      if (!args[i].is_scalar()) {
        return true;
      }
    }
    return false;
  }

  // ---- Legacy-resolution state (kernel boundary machinery).
  bool needs_op_resolution() const { return !legacy_op_.empty(); }
  const std::string& legacy_op() const { return legacy_op_; }
  // Installs the charged-interned id and drops the pending text.
  void ResolveOp(OpId resolved) {
    op = resolved;
    legacy_op_.clear();
  }
  bool args_overflowed() const { return args_overflowed_; }

  friend bool operator==(const IpcMessage& a, const IpcMessage& b) {
    return a.op == b.op && a.legacy_op_ == b.legacy_op_ && a.args == b.args &&
           a.data == b.data && a.args_overflowed_ == b.args_overflowed_;
  }

 private:
  friend Result<IpcMessage> UnmarshalMessage(ByteView buffer);

  std::string legacy_op_;
  bool args_overflowed_ = false;
};

// Reply wire bound: the status context message is short human text, not a
// data channel — anything longer is rejected whole.
inline constexpr size_t kMaxReplyStatusMessage = 1024;

// The typed reply — v2 twin of IpcMessage. Results travel in the same
// fixed vector of typed slots over the same single payload arena, so a
// reply whose results are integers or interned ids owns no heap memory
// and a reply-rewriting monitor pattern-matches slots structurally
// instead of reparsing text. The v1 {text, value} fields survive only as
// ACCESSORS over the slot vector (first kString / first kU64 slot), and
// as the FromLegacy quarantine for straggler producers.
struct IpcReply {
  Status status;
  ArgVec args;
  // Ref-counted (kernel/payload.h): a read reply is a SLICE of the
  // fileserver's backing store, not a copy of it, and an echoing monitor
  // aliases the request's data outright.
  Payload data;

  IpcReply() = default;
  explicit IpcReply(Status s) : status(std::move(s)) {}

  static IpcReply Ok() { return IpcReply(OkStatus()); }

  // The legacy shim — the ONLY place v1-style {status, text, data, value}
  // replies are built. A nonzero value becomes a kU64 slot, nonempty text
  // a kString slot (bumping IpcTextPayloadCount — the quarantine is
  // visible to the zero-string audit).
  static IpcReply FromLegacy(Status status, std::string_view text, Payload data,
                             int64_t value);

  // ---- Builders (chainable). Capacity overflow is recorded, not dropped.
  IpcReply& AddU64(uint64_t v) { return AddScalar(ArgTag::kU64, v); }
  IpcReply& AddProcess(ProcessId v) { return AddScalar(ArgTag::kProcess, v); }
  IpcReply& AddPort(PortId v) { return AddScalar(ArgTag::kPort, v); }
  IpcReply& AddObject(ObjectId v) { return AddScalar(ArgTag::kObject, v); }
  IpcReply& AddFormula(uint64_t v) { return AddScalar(ArgTag::kFormula, v); }
  IpcReply& AddString(std::string_view v) { return AddPayload(ArgTag::kString, v); }
  IpcReply& AddBytes(ByteView v) {
    return AddPayload(ArgTag::kBytes,
                      std::string_view(reinterpret_cast<const char*>(v.data()), v.size()));
  }
  IpcReply& AddScalar(ArgTag tag, uint64_t v) {
    if (!args.AddScalar(tag, v)) {
      args_overflowed_ = true;
    }
    return *this;
  }
  IpcReply& AddPayload(ArgTag tag, std::string_view v) {
    if (!args.AddPayload(tag, v)) {
      args_overflowed_ = true;
    }
    return *this;
  }

  // ---- Typed accessors, same coercion discipline as IpcMessage.
  Result<uint64_t> ArgU64(size_t i) const;
  Result<ProcessId> ArgProcess(size_t i) const;
  Result<PortId> ArgPort(size_t i) const;
  Result<ObjectId> ArgObject(size_t i) const;
  Result<uint64_t> ArgFormula(size_t i) const;
  Result<std::string_view> ArgString(size_t i) const;
  Result<ByteView> ArgBytes(size_t i) const;

  // ---- v1-compat readers over the slot vector.
  // First kU64 slot's scalar, or 0 (the v1 `value` field).
  int64_t value() const {
    for (size_t i = 0; i < args.size(); ++i) {
      if (args[i].tag() == ArgTag::kU64) {
        return static_cast<int64_t>(args[i].scalar());
      }
    }
    return 0;
  }
  // First kString slot's payload, or empty (the v1 `text` field).
  std::string_view text() const {
    for (size_t i = 0; i < args.size(); ++i) {
      if (args[i].tag() == ArgTag::kString) {
        return args[i].text();
      }
    }
    return std::string_view();
  }

  // True when any slot carries a text/bytes payload — the reply half of
  // the zero-string hot-path assertion.
  bool HasTextPayloads() const {
    for (size_t i = 0; i < args.size(); ++i) {
      if (!args[i].is_scalar()) {
        return true;
      }
    }
    return false;
  }

  bool args_overflowed() const { return args_overflowed_; }

  friend bool operator==(const IpcReply& a, const IpcReply& b) {
    return a.status == b.status && a.args == b.args && a.data == b.data &&
           a.args_overflowed_ == b.args_overflowed_;
  }

 private:
  friend Result<IpcReply> UnmarshalReply(ByteView buffer);

  bool args_overflowed_ = false;
};

// Context passed to port handlers and interceptors.
struct IpcContext {
  ProcessId caller = kKernelProcessId;
  PortId port = 0;
};

// A service listening on a port. Handlers run synchronously in the
// simulation (the paper's user-level servers: drivers, filesystem, guards,
// authorities).
class PortHandler {
 public:
  virtual ~PortHandler() = default;
  virtual IpcReply Handle(const IpcContext& context, const IpcMessage& message) = 0;

  // Batched submission (Kernel::CallMany): N messages for this port in one
  // crossing. The default is the serial loop; servers that can amortize
  // work across the batch (the fileserver and the workload object server
  // collect every message's AuthzRequest into ONE Kernel::AuthorizeBatch)
  // override it. `messages` and `replies` are the same length.
  virtual void HandleMany(const IpcContext& context, std::span<const IpcMessage> messages,
                          std::span<IpcReply> replies) {
    for (size_t i = 0; i < messages.size(); ++i) {
      replies[i] = Handle(context, messages[i]);
    }
  }
};

// Marshals a message into the flat v2 buffer the kernel produces for every
// interposed call (§5.1): interned op (or a length-prefixed legacy op
// name), one tag byte + payload per slot, length-prefixed data. Fails on
// slot overflow or payloads past the wire bounds. UnmarshalMessage is
// strict: truncated, oversized, trailing-byte, bad-tag, overlong-count,
// and unknown-op-id buffers are all rejected whole.
Result<Bytes> MarshalMessage(const IpcMessage& message);
Result<IpcMessage> UnmarshalMessage(ByteView buffer);

// The wire bounds as a pure check (slot overflow, per-payload and data
// caps, legacy-op length) — applied by the kernel's NON-marshaling paths
// too, so whether a message is accepted never depends on interposition
// being enabled. O(slot count); no buffer is built.
Status ValidateWireBounds(const IpcMessage& message);

// Reply codec — same strict discipline as the message side: version byte,
// status code + bounded context message, ≤8 typed slots, length-prefixed
// data, reject-whole on truncation / trailing bytes / bad tag / slot
// overflow / forged interned id (kObject against the object table,
// kFormula against the NAL interner — a reply is a RESULT, so an id the
// receiving instance cannot resolve is a forgery, not a request to
// resolve later).
Result<Bytes> MarshalReply(const IpcReply& reply);
Result<IpcReply> UnmarshalReply(ByteView buffer);

// Reply bounds as a pure check — applied by the kernel to EVERY reply a
// port handler returns (bare and interposed paths alike), so whether a
// server's reply is accepted never depends on a monitor being present.
Status ValidateReplyWireBounds(const IpcReply& reply);

// Inline fast-accepts for the dominant shapes on the dispatch hot path.
// The conditions are a strict subset of what the full validators accept
// (typed op, zero slots, bounded data/status), so semantics are identical;
// everything else falls through to the out-of-line check. An empty ArgVec
// cannot carry the overflow flag (overflow is only set by adding past a
// full vector), so args.empty() subsumes the overflow test.
inline Status CheckWireBounds(const IpcMessage& message) {
  if (!message.needs_op_resolution() && message.args.empty() &&
      message.data.size() <= kMaxIpcData && IsKnownOpId(message.op)) {
    return OkStatus();
  }
  return ValidateWireBounds(message);
}
inline Status CheckReplyWireBounds(const IpcReply& reply) {
  if (reply.args.empty() && reply.data.size() <= kMaxIpcData &&
      reply.status.message().size() <= kMaxReplyStatusMessage) {
    return OkStatus();
  }
  return ValidateReplyWireBounds(reply);
}

// The hoisted interned id of a syscall's operation name (interned once,
// not per call — the syscall channel's marshal path is string-free).
OpId SyscallOp(Syscall call);

// Test-support counter: total text/bytes slot payloads (and legacy op
// names) materialized on the heap by the IPC layer, process-wide. The
// zero-string audit snapshots it around an interposed call with scalar
// args and asserts it did not move.
uint64_t IpcTextPayloadCount();

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_IPC_H_
