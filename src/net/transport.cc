#include "net/transport.h"

#include <utility>

namespace nexus::net {

namespace {

std::pair<NodeId, NodeId> OrderedPair(const NodeId& a, const NodeId& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

Transport::Transport(uint64_t seed) : rng_(seed) {}

Status Transport::Attach(const NodeId& node, Endpoint* endpoint) {
  if (endpoint == nullptr) {
    return InvalidArgument("null endpoint");
  }
  auto [it, inserted] = endpoints_.emplace(node, endpoint);
  if (!inserted) {
    return AlreadyExists("node already attached: " + node);
  }
  (void)it;
  return OkStatus();
}

void Transport::Detach(const NodeId& node) { endpoints_.erase(node); }

void Transport::SetLink(const NodeId& a, const NodeId& b, const LinkConfig& config) {
  links_[OrderedPair(a, b)] = config;
}

const LinkConfig& Transport::LinkFor(const NodeId& a, const NodeId& b) const {
  auto it = links_.find(OrderedPair(a, b));
  return it == links_.end() ? default_link_ : it->second;
}

Status Transport::Send(Message message) {
  if (endpoints_.find(message.to) == endpoints_.end()) {
    return NotFound("no endpoint attached at " + message.to);
  }
  const LinkConfig& link = LinkFor(message.from, message.to);
  ++stats_.sent;
  stats_.bytes_carried += message.payload.size();
  if (rng_.NextBool(link.drop_rate)) {
    ++stats_.dropped;
    return OkStatus();  // Loss is invisible to the sender.
  }
  Pending pending;
  pending.deliver_at = now_us_ + link.latency_us;
  pending.seq = send_seq_++;
  pending.message = std::move(message);
  queue_.push(std::move(pending));
  return OkStatus();
}

size_t Transport::DeliverAll(size_t max_steps) {
  size_t delivered = 0;
  while (!queue_.empty() && delivered < max_steps) {
    Pending next = queue_.top();
    queue_.pop();
    if (next.deliver_at > now_us_) {
      now_us_ = next.deliver_at;
    }
    auto it = endpoints_.find(next.message.to);
    if (it == endpoints_.end()) {
      continue;  // Endpoint detached while the message was in flight.
    }
    ++stats_.delivered;
    ++delivered;
    it->second->OnMessage(next.message);
  }
  return delivered;
}

}  // namespace nexus::net
