// Scenario adapters: the existing application scenarios (fauxbook, DDRM,
// movie_player, TruDocs) reshaped into a uniform surface the workload
// driver can pound — N registered objects behind a guarded service port,
// an audited prefix with flip-able goals, a pool of proof-holding subject
// processes, and (for the monitored scenarios) a real DDRM interceptor on
// the service port so the interposition invariant is exercised end to
// end, not simulated.
//
// Subjects beyond the proof-holder pool are VIRTUAL: ProcessId values
// with no backing process record. The kernel's authorization path handles
// them by design (quota rooting falls back to the subject id; a subject
// without a pre-submitted proof is a cacheable deny), which is what makes
// millions of simulated subjects affordable — the driver never pays a
// process record per simulated user.
#ifndef NEXUS_APPS_SCENARIO_ADAPTERS_H_
#define NEXUS_APPS_SCENARIO_ADAPTERS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/nexus.h"
#include "services/ddrm.h"

namespace nexus::apps {

// The per-scenario flavor: names, formulas, and whether the service port
// is behind a reference monitor.
struct ScenarioSpec {
  std::string name;
  std::string read_op;   // The audited operation.
  std::string write_op;  // Secondary traffic (bootstrap-denied for non-owners).
  std::string object_prefix;
  std::string credential;   // Said by the certifying principal at setup.
  std::string certifier;    // The principal whose label discharges proofs.
  std::string allow_goal;   // Provable goal (its premise proof checks out).
  std::string deny_goal;    // Unprovable goal the mutator flips to.
  bool interposed = false;  // DDRM monitor on the service port.
  // Authority-vouched conjunct: when non-empty, the installed allow goal
  // becomes And(allow_goal, authority_leaf) and holder proofs discharge
  // the leaf via the guard's (remote) authority consultation — every
  // engine miss crosses the fabric.
  std::string authority_leaf;
  // Mesh federation backing: when > 0, Setup stands up this many home
  // Nexus instances on a simulated transport, meshes them with the
  // workload's nexus (PresenceFederation), and the authority_leaf routes
  // through a K-of-N QuorumAuthority over the homes.
  size_t federation_homes = 0;
  size_t federation_quorum = 0;  // K; 0 = majority of homes.
};

ScenarioSpec FauxbookScenario();
ScenarioSpec DdrmScenario();
ScenarioSpec MoviePlayerScenario();
ScenarioSpec TrudocsScenario();
ScenarioSpec FederationScenario();
// "fauxbook" | "ddrm" | "movie_player" | "trudocs" | "federation".
Result<ScenarioSpec> ScenarioByName(std::string_view name);
std::vector<std::string> ScenarioNames();

// One scenario instantiated inside a Nexus.
class WorkloadScenario {
 public:
  struct Params {
    size_t objects = 256;
    size_t audited = 4;       // Leading objects carrying flip-able goals.
    size_t proof_holders = 16;
  };

  static Result<std::unique_ptr<WorkloadScenario>> Create(core::Nexus* nexus,
                                                          const ScenarioSpec& spec,
                                                          const Params& params);
  ~WorkloadScenario();

  WorkloadScenario(const WorkloadScenario&) = delete;
  WorkloadScenario& operator=(const WorkloadScenario&) = delete;

  // Workload verbs (thread-safe; FlipGoal serializes per audited object).
  Status Authorize(kernel::ProcessId subject, size_t object_index);
  Status Read(kernel::ProcessId subject, size_t object_index);   // Via Call.
  Status Write(kernel::ProcessId subject, size_t object_index);  // Via Call.
  // `count` reads through ONE CallMany submission (objects consecutive
  // from object_index). *oks (optional) receives the OK-reply count;
  // returns the first non-OK reply status, Ok when all succeeded.
  Status ReadBatch(kernel::ProcessId subject, size_t object_index, size_t count,
                   size_t* oks = nullptr);
  Status FlipGoal(size_t audited_index);  // Alternates allow/deny goal.
  Status Churn(const std::string& name);  // Create + kill one process.

  // Subject mapping: ranks [0, proof_holders) are the real proof-holding
  // processes (the zipf head, so the allow path dominates coverage);
  // higher ranks are virtual subjects.
  kernel::ProcessId SubjectAt(uint64_t rank) const;

  // Audit wiring.
  const ScenarioSpec& spec() const { return spec_; }
  kernel::OpId read_op() const { return read_op_; }
  kernel::OpId write_op() const { return write_op_; }
  const std::vector<kernel::ObjectId>& objects() const { return objects_; }
  size_t audited() const { return audited_; }
  nal::FormulaId allow_goal_id() const { return allow_goal_id_; }
  nal::FormulaId deny_goal_id() const { return deny_goal_id_; }
  const std::vector<kernel::ProcessId>& proof_holders() const { return proof_holders_; }
  kernel::PortId service_port() const { return service_port_; }
  bool interposed() const { return spec_.interposed; }

 private:
  WorkloadScenario(core::Nexus* nexus, ScenarioSpec spec);

  Status Setup(const Params& params);
  Status SetupFederation();

  class GuardedObjectServer;
  struct FederationBacking;

  core::Nexus* nexus_;
  ScenarioSpec spec_;
  kernel::OpId read_op_ = 0;
  kernel::OpId write_op_ = 0;
  nal::Formula allow_goal_;   // Conjoined with authority_leaf_ when set.
  nal::Formula deny_goal_;
  nal::Formula authority_leaf_;  // nullptr when the spec has no leaf.
  nal::FormulaId allow_goal_id_ = 0;
  nal::FormulaId deny_goal_id_ = 0;
  kernel::ProcessId server_ = 0;
  kernel::PortId service_port_ = 0;
  std::vector<kernel::ObjectId> objects_;
  size_t audited_ = 0;
  std::vector<kernel::ProcessId> proof_holders_;
  std::unique_ptr<GuardedObjectServer> handler_;
  std::unique_ptr<services::DeviceDriverMonitor> monitor_;
  // Home instances + transport + mesh + quorum (federated scenarios).
  std::unique_ptr<FederationBacking> federation_;
  // FlipGoal serialization + per-object flip parity. The mutation log
  // records install order only if installs on one (op, obj) are
  // externally serialized — the auditor's documented requirement.
  struct AuditedObjectState;
  std::vector<std::unique_ptr<AuditedObjectState>> audited_state_;
};

}  // namespace nexus::apps

#endif  // NEXUS_APPS_SCENARIO_ADAPTERS_H_
