// The IPC connectivity analyzer (§2.2): the paper's flagship *analytic*
// basis for trust.
//
// Enumerates the transitive IPC connection graph through the kernel's
// introspection interface. Because Nexus disk and network drivers live in
// user space and are reachable only via IPC, a process whose transitive
// reach excludes those drivers provably has no channel to disk or network —
// without ever revealing the process's binary hash (the movie-player
// scenario).
#ifndef NEXUS_SERVICES_IPC_ANALYZER_H_
#define NEXUS_SERVICES_IPC_ANALYZER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "core/engine.h"
#include "kernel/kernel.h"

namespace nexus::services {

class IpcAnalyzer {
 public:
  // `self` is the process identity the analyzer's labels are attributed to.
  IpcAnalyzer(kernel::Kernel* kernel, core::Engine* engine, kernel::ProcessId self);

  // Transitive reachability over the current IPC graph: `from` reaches `to`
  // if it holds a channel to a port owned by `to`, or to any process that
  // transitively reaches `to`.
  bool HasPath(kernel::ProcessId from, kernel::ProcessId to) const;

  // Every process reachable from `from` (excluding `from` itself unless it
  // loops back).
  std::set<kernel::ProcessId> ReachableFrom(kernel::ProcessId from) const;

  // Issues the label
  //   <analyzer> says not hasPath(/proc/ipd/<subject>, <target-name>)
  // into the analyzer's labelstore, where <target-name> covers every live
  // process with that name. Fails if a path exists.
  Result<core::LabelHandle> AttestNoPath(kernel::ProcessId subject,
                                         const std::string& target_name);

  // Positive form: <analyzer> says hasPath(...). Fails if no path exists.
  Result<core::LabelHandle> AttestPath(kernel::ProcessId subject,
                                       const std::string& target_name);

  // ---------------------------------------------- observed traffic (trace)
  // The static channel graph above says who COULD talk; the flight
  // recorder says who DID. These walk the recorder's retained kCall events
  // (subject = caller, aux = destination port) and resolve each port to
  // its owner, yielding caller->callee edges weighted by call count. Only
  // meaningful while FlightRecorder::Global() is enabled; ports whose
  // owner died resolve to no edge.
  std::map<std::pair<kernel::ProcessId, kernel::ProcessId>, uint64_t> ObservedEdges() const;
  // Calls observed from `from` to any port owned by `to`.
  uint64_t ObservedTraffic(kernel::ProcessId from, kernel::ProcessId to) const;

 private:
  std::set<kernel::ProcessId> ProcessesNamed(const std::string& name) const;

  kernel::Kernel* kernel_;
  core::Engine* engine_;
  kernel::ProcessId self_;
};

}  // namespace nexus::services

#endif  // NEXUS_SERVICES_IPC_ANALYZER_H_
