// The reserved IPC port layout.
//
// Nexus itself gives every system call a compile-time IPC port id
// (SYSCALL_IPCPORT(X) in the real kernel): syscalls ARE IPC to reserved
// ports, so dispatch is an array index and interposing on a syscall is
// interposing on a port id known before boot. This header is the whole
// layout: a handful of fixed low ports for boot services, one consecutive
// port per Syscall enumerator, and the first id the dynamic allocator may
// hand out. Everything is constexpr — no map, no mutex, no registration
// step — and the static_asserts tie the layout to kSyscallCount so
// appending a syscall without growing the table is a compile error.
#ifndef NEXUS_KERNEL_SYSCALL_PORTS_H_
#define NEXUS_KERNEL_SYSCALL_PORTS_H_

#include <cstddef>

#include "kernel/types.h"

namespace nexus::kernel {

// Boot services on fixed low ports, claimed at boot via
// Kernel::ClaimBootPort (the fileserver binds kFsBootPort; the guard and
// authority ids are reserved for the core layer's upcall services).
inline constexpr PortId kGuardBootPort = 1;
inline constexpr PortId kAuthorityBootPort = 2;
inline constexpr PortId kFsBootPort = 3;
inline constexpr PortId kLastBootPort = kFsBootPort;

// One reserved port per syscall, consecutive from kFirstSyscallPort in
// enumerator order. A Call() addressed to one of these IS the syscall.
inline constexpr PortId kFirstSyscallPort = kLastBootPort + 1;

constexpr PortId SyscallIpcPort(Syscall call) {
  return kFirstSyscallPort + static_cast<PortId>(call);
}

// First id CreatePort may allocate; everything below is reserved.
inline constexpr PortId kFirstDynamicPort =
    kFirstSyscallPort + static_cast<PortId>(kSyscallCount);

constexpr bool IsSyscallPort(PortId port) {
  return port >= kFirstSyscallPort && port < kFirstDynamicPort;
}

constexpr Syscall SyscallOfPort(PortId port) {
  return static_cast<Syscall>(port - kFirstSyscallPort);
}

static_assert(static_cast<size_t>(Syscall::kProcRead) + 1 == kSyscallCount,
              "update kSyscallCount (and this assert's last enumerator) when "
              "appending syscalls");
static_assert(SyscallIpcPort(Syscall::kProcRead) + 1 == kFirstDynamicPort,
              "the reserved-port table must cover exactly kSyscallCount "
              "consecutive ids");
static_assert(kGuardBootPort >= 1 && kLastBootPort < kFirstSyscallPort,
              "boot ports must sit below the syscall port range");

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_SYSCALL_PORTS_H_
