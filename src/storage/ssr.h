// Secure Storage Regions (§3.3).
//
// An SSR is an integrity-protected, optionally encrypted persistent region
// on untrusted secondary storage. Contents are divided into fixed-size
// blocks; block hashes form a Merkle tree whose root is anchored in a VDIR
// (and hence, transitively, in the TPM's hardware DIRs). Counter-mode
// encryption keeps blocks independently decryptable, so reads verify and
// decrypt only the relevant blocks (demand paging). Replaying stale disk
// images fails: the replayed tree's root no longer matches the VDIR.
#ifndef NEXUS_STORAGE_SSR_H_
#define NEXUS_STORAGE_SSR_H_

#include <map>
#include <string>

#include "storage/blockdev.h"
#include "storage/merkle.h"
#include "storage/vdir.h"
#include "storage/vkey.h"

namespace nexus::storage {

using SsrId = uint32_t;

class SsrManager {
 public:
  struct Config {
    size_t block_size = 1024;  // §5.4 notes the 1 kB default block size.
  };

  SsrManager(BlockDevice* disk, VdirTable* vdirs, VkeyTable* vkeys);
  SsrManager(BlockDevice* disk, VdirTable* vdirs, VkeyTable* vkeys, const Config& config);

  // Creates an SSR. `vkey` 0 with encrypt=false gives integrity-only.
  Result<SsrId> Create(bool encrypted, VkeyId vkey = 0, uint64_t nonce = 0);
  Status Destroy(SsrId id);

  // Writes [offset, offset+data.size()) — extends the region as needed.
  Status Write(SsrId id, uint64_t offset, ByteView data);
  // Reads and verifies exactly the covered blocks.
  Result<Bytes> Read(SsrId id, uint64_t offset, size_t length) const;
  Result<uint64_t> Size(SsrId id) const;

  // Re-opens all SSR metadata from disk after a reboot, verifying each
  // region's tree root against its VDIR. Regions that fail verification
  // are reported and dropped.
  Status Recover();

  size_t block_size() const { return config_.block_size; }

 private:
  struct Region {
    SsrId id = 0;
    VdirId vdir = 0;
    bool encrypted = false;
    VkeyId vkey = 0;
    uint64_t nonce = 0;
    uint64_t size = 0;
    MerkleTree tree;
  };

  std::string BlockPath(SsrId id, size_t index) const {
    return "ssr/" + std::to_string(id) + "/block/" + std::to_string(index);
  }
  std::string MetaPath(SsrId id) const { return "ssr/" + std::to_string(id) + "/meta"; }
  static std::string DirectoryPath() { return "ssr/directory"; }

  // Root binding: SHA-1(merkle_root || size), stored in the VDIR.
  static VdirValue RootBinding(const Region& region);
  Status PersistMeta(const Region& region);
  Status PersistDirectory();
  Result<Bytes> ReadBlockVerified(const Region& region, size_t index) const;
  Status WriteBlock(Region& region, size_t index, ByteView block);

  BlockDevice* disk_;
  VdirTable* vdirs_;
  VkeyTable* vkeys_;
  Config config_;
  std::map<SsrId, Region> regions_;
  SsrId next_id_ = 1;
};

}  // namespace nexus::storage

#endif  // NEXUS_STORAGE_SSR_H_
