#include "kernel/fileserver.h"

#include <algorithm>
#include <vector>

namespace nexus::kernel {

namespace {

// Hoisted operation ids: interned once per process lifetime, not per call.
const OpId kCreateOp = InternOp("create");
const OpId kOpenOp = InternOp("open");
const OpId kCloseOp = InternOp("close");
const OpId kReadOp = InternOp("read");
const OpId kWriteOp = InternOp("write");
const OpId kUnlinkOp = InternOp("unlink");
const OpId kStatOp = InternOp("stat");

// A miss on a hot verb replies with a FIXED message (small-string, no
// heap) and carries the offending path as an aliased reply slot — the
// caller's own bytes, zero-copy — instead of concatenating a fresh
// "no such file: <path>" heap string per miss.
IpcReply NoSuchFile(const IpcMessage& message, size_t path_slot) {
  IpcReply reply(NotFound("no such file"));
  reply.args.AddAliasedPayload(ArgTag::kString, message.args, path_slot);
  return reply;
}

}  // namespace

Status FileServer::CreateFile(const std::string& path, ByteView content) {
  if (files_.contains(path)) {
    return AlreadyExists("file exists: " + path);
  }
  files_[path] = std::make_shared<Bytes>(content.begin(), content.end());
  return OkStatus();
}

Result<Bytes> FileServer::ReadFile(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFound("no such file: " + path);
  }
  return *it->second;
}

Result<ObjectId> FileServer::FileObject(ProcessId caller, std::string_view path) {
  auto it = file_objects_.find(path);
  if (it != file_objects_.end()) {
    return it->second;  // Memoized: no string built, no interning.
  }
  // First sight of this path: build "file:<path>" ONCE and intern it
  // through the charged surface — probing endless novel paths exhausts the
  // prober's name quota, not the table. The same buffer then becomes the
  // memo key (erase the prefix in place), so the miss path costs one heap
  // string total, not two.
  std::string key = "file:";
  key += path;
  Result<ObjectId> object = kernel_->InternObjectCharged(caller, key);
  if (object.ok()) {
    key.erase(0, 5);
    file_objects_.emplace(std::move(key), *object);
  }
  return object;
}

std::shared_ptr<Bytes>& FileServer::ContentFor(const std::string& path) {
  std::shared_ptr<Bytes>& content = files_[path];
  if (content == nullptr) {
    content = std::make_shared<Bytes>();
  }
  return content;
}

Status FileServer::Authorized(const Prejudged* pre, const AuthzRequest& request) {
  if (pre != nullptr && pre->request.subject == request.subject &&
      pre->request.op == request.op && pre->request.obj == request.obj) {
    return pre->verdict;
  }
  // No (matching) prefetched verdict — the serial path, or a batch message
  // whose target changed under an earlier message in the same batch.
  return kernel_->Authorize(request);
}

std::optional<AuthzRequest> FileServer::AuthzFor(const IpcContext& context,
                                                 const IpcMessage& message) {
  const OpId op = message.op;
  if (op == kCreateOp || op == kOpenOp || op == kUnlinkOp) {
    Result<std::string_view> path_arg = message.ArgString(0);
    if (!path_arg.ok()) {
      return std::nullopt;  // Fails argument validation before authorizing.
    }
    Result<ObjectId> object = FileObject(context.caller, *path_arg);
    if (!object.ok()) {
      return std::nullopt;  // Interning fails identically at execute time.
    }
    return AuthzRequest{context.caller, op, *object};
  }
  if (op == kReadOp || op == kWriteOp) {
    Result<uint64_t> fd_arg = message.ArgU64(0);
    if (!fd_arg.ok()) {
      return std::nullopt;
    }
    auto it = open_files_.find(static_cast<int64_t>(*fd_arg));
    if (it == open_files_.end() || it->second.owner != context.caller) {
      return std::nullopt;
    }
    return AuthzRequest{context.caller, op, it->second.object};
  }
  return std::nullopt;  // close/stat/unknown verbs don't authorize.
}

IpcReply FileServer::Handle(const IpcContext& context, const IpcMessage& message) {
  return HandleWith(context, message, nullptr);
}

void FileServer::HandleMany(const IpcContext& context, std::span<const IpcMessage> messages,
                            std::span<IpcReply> replies) {
  const size_t n = std::min(messages.size(), replies.size());
  // Prefetch pass: predict each message's authorization tuple, then make
  // ONE batched upcall for all of them — the engine amortizes credential
  // collection and deduplicates repeated tuples across the batch.
  std::vector<AuthzRequest> requests;
  std::vector<size_t> request_of(n, static_cast<size_t>(-1));
  requests.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (std::optional<AuthzRequest> request = AuthzFor(context, messages[i])) {
      request_of[i] = requests.size();
      requests.push_back(*request);
    }
  }
  std::vector<Status> verdicts;
  if (!requests.empty()) {
    verdicts = kernel_->AuthorizeBatch(requests);
  }
  // Execute pass: same per-message semantics as N serial Handle calls,
  // with the prefetched verdict consulted where it still applies.
  for (size_t i = 0; i < n; ++i) {
    if (request_of[i] == static_cast<size_t>(-1)) {
      replies[i] = HandleWith(context, messages[i], nullptr);
    } else {
      Prejudged pre{requests[request_of[i]], verdicts[request_of[i]]};
      replies[i] = HandleWith(context, messages[i], &pre);
    }
  }
}

// Argument convention (typed ABI v2): paths travel as string slots —
// they are names — while fds, offsets, and lengths are integer slots and
// cross the IPC boundary with no stringify/re-parse. Legacy text callers
// are still accepted: the integer accessors fall back to the single
// decimal decode point in kernel/ipc.h.
IpcReply FileServer::HandleWith(const IpcContext& context, const IpcMessage& message,
                                const Prejudged* pre) {
  const OpId op = message.op;

  if (op == kCreateOp) {
    Result<std::string_view> path_arg = message.ArgString(0);
    if (!path_arg.ok()) {
      return Error(InvalidArgument("create needs a path"));
    }
    const std::string path(*path_arg);  // CreateFile owns the key.
    Result<ObjectId> object = FileObject(context.caller, path);
    if (!object.ok()) {
      return Error(object.status());
    }
    Status authorized = Authorized(pre, AuthzRequest{context.caller, kCreateOp, *object});
    if (!authorized.ok()) {
      return Error(authorized);
    }
    Status created = CreateFile(path, message.data);
    return IpcReply(created);
  }

  if (op == kOpenOp) {
    Result<std::string_view> path_arg = message.ArgString(0);
    if (!path_arg.ok()) {
      return Error(InvalidArgument("open needs a path"));
    }
    Result<ObjectId> object = FileObject(context.caller, *path_arg);
    if (!object.ok()) {
      return Error(object.status());
    }
    Status authorized = Authorized(pre, AuthzRequest{context.caller, kOpenOp, *object});
    if (!authorized.ok()) {
      return Error(authorized);
    }
    auto it = files_.find(*path_arg);  // Transparent: no key string built.
    if (it == files_.end()) {
      return NoSuchFile(message, 0);
    }
    int64_t fd = next_fd_++;
    open_files_[fd] = OpenFile{std::string(*path_arg), context.caller, *object};
    // v2: the fd is the reply — the v1 path-text echo is gone (no consumer
    // ever read it back, and it made every open move a heap string).
    return IpcReply::Ok().AddU64(static_cast<uint64_t>(fd));
  }

  if (op == kCloseOp) {
    Result<uint64_t> fd_arg = message.ArgU64(0);
    if (!fd_arg.ok()) {
      return Error(InvalidArgument("close: fd must be a file descriptor"));
    }
    int64_t fd = static_cast<int64_t>(*fd_arg);
    auto it = open_files_.find(fd);
    if (it == open_files_.end() || it->second.owner != context.caller) {
      return Error(NotFound("bad file descriptor"));
    }
    open_files_.erase(it);
    return IpcReply::Ok();
  }

  if (op == kReadOp || op == kWriteOp) {
    const bool is_read = op == kReadOp;
    Result<uint64_t> fd_arg = message.ArgU64(0);
    if (!fd_arg.ok()) {
      return Error(InvalidArgument(std::string(is_read ? "read" : "write") +
                                   ": fd must be a file descriptor"));
    }
    int64_t fd = static_cast<int64_t>(*fd_arg);
    auto it = open_files_.find(fd);
    if (it == open_files_.end() || it->second.owner != context.caller) {
      return Error(NotFound("bad file descriptor"));
    }
    // The fd carries its interned object id: the per-call authorization is
    // three integers, no "file:<path>" string ever built on this path.
    Status authorized = Authorized(
        pre, AuthzRequest{context.caller, is_read ? kReadOp : kWriteOp, it->second.object});
    if (!authorized.ok()) {
      return Error(authorized);
    }
    const std::string& path = it->second.path;
    std::shared_ptr<Bytes>& content = ContentFor(path);
    if (is_read) {
      uint64_t offset = 0;
      uint64_t length = content->size();
      if (message.args.size() > 1) {
        Result<uint64_t> offset_arg = message.ArgU64(1);
        if (!offset_arg.ok()) {
          return Error(InvalidArgument("read: offset must be an integer"));
        }
        offset = *offset_arg;
      }
      if (message.args.size() > 2) {
        Result<uint64_t> length_arg = message.ArgU64(2);
        if (!length_arg.ok()) {
          return Error(InvalidArgument("read: length must be an integer"));
        }
        length = *length_arg;
      }
      if (offset > content->size()) {
        return Error(OutOfRange("read past end of file"));
      }
      length = std::min<uint64_t>(length, content->size() - offset);
      // Typed read reply: one u64 length slot + the data block. The data
      // is a SLICE of the backing store — zero bytes copied; the slice
      // holds a reference, so an unlink or COW write cannot yank the
      // buffer out from under the caller.
      IpcReply reply = IpcReply::Ok().AddU64(length);
      reply.data = Payload::Slice(content, static_cast<size_t>(offset),
                                  static_cast<size_t>(length));
      return reply;
    }
    // write
    uint64_t offset = content->size();
    if (message.args.size() > 1) {
      Result<uint64_t> offset_arg = message.ArgU64(1);
      if (!offset_arg.ok()) {
        return Error(InvalidArgument("write: offset must be an integer"));
      }
      offset = *offset_arg;
    }
    if (offset > content->size()) {
      return Error(OutOfRange("write past end of file"));
    }
    // Copy-on-write: outstanding read slices pin the old buffer; a write
    // clones it first so they keep the exact content they sliced.
    if (content.use_count() > 1) {
      content = std::make_shared<Bytes>(*content);
    }
    if (offset + message.data.size() > content->size()) {
      content->resize(offset + message.data.size());
    }
    std::copy(message.data.begin(), message.data.end(),
              content->begin() + static_cast<ptrdiff_t>(offset));
    return IpcReply::Ok().AddU64(message.data.size());
  }

  if (op == kUnlinkOp) {
    Result<std::string_view> path_arg = message.ArgString(0);
    if (!path_arg.ok()) {
      return Error(InvalidArgument("unlink needs a path"));
    }
    std::string_view path = *path_arg;
    Result<ObjectId> object = FileObject(context.caller, path);
    if (!object.ok()) {
      return Error(object.status());
    }
    Status authorized = Authorized(pre, AuthzRequest{context.caller, kUnlinkOp, *object});
    if (!authorized.ok()) {
      return Error(authorized);
    }
    auto it = files_.find(path);
    if (it == files_.end()) {
      return NoSuchFile(message, 0);
    }
    files_.erase(it);  // Outstanding read slices keep their reference.
    return IpcReply::Ok();
  }

  if (op == kStatOp) {
    Result<std::string_view> path_arg = message.ArgString(0);
    if (!path_arg.ok()) {
      return Error(InvalidArgument("stat needs a path"));
    }
    auto it = files_.find(*path_arg);  // Transparent: no key string built.
    if (it == files_.end()) {
      return NoSuchFile(message, 0);
    }
    return IpcReply::Ok().AddU64(it->second->size());
  }

  return Error(
      InvalidArgument("unknown filesystem operation: " + std::string(message.operation())));
}

}  // namespace nexus::kernel
