#include <gtest/gtest.h>

#include "apps/bgp_verifier.h"
#include "apps/certipics.h"
#include "apps/fauxbook.h"
#include "apps/java_store.h"
#include "apps/movie_player.h"
#include "apps/notabot.h"
#include "apps/trudocs.h"

namespace nexus::apps {
namespace {

class AppsTest : public ::testing::Test {
 protected:
  AppsTest() : tpm_rng_(601), tpm_(tpm_rng_), nexus_(&tpm_) {}

  Rng tpm_rng_;
  tpm::Tpm tpm_;
  core::Nexus nexus_;
};

// -------------------------------------------------------------- Fauxbook

class FauxbookTest : public AppsTest {
 protected:
  FauxbookTest() : fauxbook_(&nexus_) {
    fauxbook_.AddUser("alice");
    fauxbook_.AddUser("bob");
    fauxbook_.AddUser("eve");
  }
  Fauxbook fauxbook_;
};

TEST_F(FauxbookTest, UsersPostAndReadOwnFeed) {
  ASSERT_TRUE(fauxbook_.PostStatus("alice", "hello world").ok());
  Result<std::vector<std::string>> feed = fauxbook_.ReadFeed("alice");
  ASSERT_TRUE(feed.ok());
  EXPECT_EQ(*feed, std::vector<std::string>{"hello world"});
}

TEST_F(FauxbookTest, FriendsSeeEachOthersPosts) {
  fauxbook_.PostStatus("alice", "alice-post");
  fauxbook_.PostStatus("bob", "bob-post");
  ASSERT_TRUE(fauxbook_.AddFriend("alice", "bob").ok());  // Alice authorizes Bob.
  std::vector<std::string> bob_feed = *fauxbook_.ReadFeed("bob");
  EXPECT_EQ(bob_feed.size(), 2u);  // His own + Alice's.
  // Alice did not get authorization from Bob: she sees only her own.
  std::vector<std::string> alice_feed = *fauxbook_.ReadFeed("alice");
  EXPECT_EQ(alice_feed, std::vector<std::string>{"alice-post"});
}

TEST_F(FauxbookTest, NonFriendSeesNothing) {
  fauxbook_.PostStatus("alice", "private-ish");
  std::vector<std::string> eve_feed = *fauxbook_.ReadFeed("eve");
  EXPECT_TRUE(eve_feed.empty());
}

TEST_F(FauxbookTest, DeveloperCannotPeekAtUserData) {
  fauxbook_.PostStatus("alice", "users only");
  Result<Bytes> peeked = fauxbook_.DeveloperPeek("alice");
  EXPECT_FALSE(peeked.ok());
  EXPECT_EQ(peeked.status().code(), ErrorCode::kPermissionDenied);
}

TEST_F(FauxbookTest, DeveloperCannotForgeFriendEdges) {
  EXPECT_EQ(fauxbook_.DeveloperForgeFriend("alice", "eve").code(),
            ErrorCode::kPermissionDenied);
}

TEST_F(FauxbookTest, TenantCodeCannotExfiltrateAcrossGraph) {
  fauxbook_.PostStatus("alice", "not for eve");
  EXPECT_EQ(fauxbook_.TenantExfiltrate("alice", "eve").code(),
            ErrorCode::kPermissionDenied);
  // But along an authorized edge the same tenant operation succeeds.
  fauxbook_.AddFriend("alice", "bob");
  EXPECT_TRUE(fauxbook_.TenantExfiltrate("alice", "bob").ok());
}

TEST_F(FauxbookTest, FriendEdgeDepositsScopedDelegationLabel) {
  fauxbook_.AddFriend("alice", "bob");
  bool found = false;
  for (const nal::Formula& label : nexus_.engine().SystemStore().All()) {
    std::string text = label->ToString();
    if (text.find("user.bob speaksfor") != std::string::npos &&
        text.find("user.alice on feed") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(FauxbookTest, SandboxAcceptsWhitelistedImports) {
  TenantModule module{"feedgen", {"fauxbook_api"}, {"render", "getattr(obj)"}};
  EXPECT_TRUE(fauxbook_.LoadTenantCode(module).ok());
}

TEST_F(FauxbookTest, SandboxRejectsForbiddenImports) {
  TenantModule module{"evil", {"os"}, {}};
  EXPECT_EQ(fauxbook_.LoadTenantCode(module).code(), ErrorCode::kPermissionDenied);
}

TEST_F(FauxbookTest, SandboxRewritesReflection) {
  PythonSandbox& sandbox = fauxbook_.sandbox();
  TenantModule module{"m", {}, {"getattr(x)", "eval(y)", "__import__(z)", "render()"}};
  TenantModule rewritten = sandbox.RewriteReflection(module);
  EXPECT_EQ(rewritten.calls[0], "safe_getattr(x)");
  EXPECT_EQ(rewritten.calls[1], "safe_eval(y)");
  EXPECT_EQ(rewritten.calls[2], "safe___import__(z)");
  EXPECT_EQ(rewritten.calls[3], "render()");
}

TEST_F(FauxbookTest, SandboxLoadDepositsLabels) {
  fauxbook_.LoadTenantCode(TenantModule{"feedgen", {"fauxbook_api"}, {}});
  size_t labels = 0;
  for (const nal::Formula& label : nexus_.engine().StoreFor(fauxbook_.framework_pid()).All()) {
    std::string text = label->ToString();
    if (text.find("feedgen") != std::string::npos) {
      ++labels;
    }
  }
  EXPECT_EQ(labels, 3u);  // isLegalPython, importsConstrained, reflectionRewritten.
}

TEST_F(FauxbookTest, ResourceAttestationFromSchedulerState) {
  ASSERT_TRUE(fauxbook_.SetTenantWeight("fauxbook", 30).ok());
  // The framework is the only stride client, so its share is 100%.
  EXPECT_TRUE(fauxbook_.AttestCpuShare("fauxbook", 50).ok());
  // Add a competitor with triple the weight: the share drops below 50%.
  kernel::ProcessId other = *nexus_.CreateProcess("other-tenant", ToBytes("o"));
  nexus_.kernel().scheduler().AddClient(other, 90);
  EXPECT_FALSE(fauxbook_.AttestCpuShare("fauxbook", 50).ok());
  EXPECT_TRUE(fauxbook_.AttestCpuShare("fauxbook", 25).ok());
}

TEST_F(FauxbookTest, DriverMonitorBlocksContentAccess) {
  kernel::IpcMessage read_page = kernel::IpcMessage::Of("read_page");
  read_page.AddU64(0);
  // Syscall channels are the reserved per-syscall ports now; routing a
  // message at one dispatches the syscall itself (kNull here).
  kernel::IpcReply reply =
      nexus_.kernel().Call(fauxbook_.driver_pid(),
                           /*port=*/kernel::SyscallIpcPort(kernel::Syscall::kNull),
                           read_page);
  (void)reply;  // The DDRM check is below.
  kernel::IpcContext context;
  EXPECT_EQ(fauxbook_.driver_monitor().OnCall(context, read_page),
            kernel::InterposeVerdict::kDeny);
  kernel::IpcMessage dma = kernel::IpcMessage::Of("dma_setup");
  dma.AddU64(0);
  EXPECT_EQ(fauxbook_.driver_monitor().OnCall(context, dma),
            kernel::InterposeVerdict::kAllow);
}

TEST_F(FauxbookTest, ServeStaticAndDynamic) {
  nexus_.fs().CreateFile("/www/index.html", ToBytes("<h1>fauxbook</h1>"));
  Result<Bytes> page = fauxbook_.ServeStatic("/www/index.html");
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(ToString(*page), "<h1>fauxbook</h1>");

  fauxbook_.PostStatus("alice", "dynamic content");
  Result<Bytes> dynamic = fauxbook_.ServeDynamic("alice");
  ASSERT_TRUE(dynamic.ok());
  EXPECT_NE(ToString(*dynamic).find("dynamic content"), std::string::npos);
}

TEST_F(FauxbookTest, DuplicateUserRejected) {
  EXPECT_FALSE(fauxbook_.AddUser("alice").ok());
  EXPECT_FALSE(fauxbook_.AddFriend("alice", "nobody").ok());
  EXPECT_FALSE(fauxbook_.PostStatus("nobody", "x").ok());
  EXPECT_FALSE(fauxbook_.ReadFeed("nobody").ok());
}

// ---------------------------------------------------------- Movie player

class MoviePlayerTest : public AppsTest {
 protected:
  Bytes movie_ = ToBytes("MOVIE-STREAM-BYTES");
};

TEST_F(MoviePlayerTest, WhitelistModeLockdown) {
  ContentServer server(&nexus_, ContentServer::Mode::kHashWhitelist, movie_);
  Bytes blessed_binary = ToBytes("certified-player-v1");
  server.WhitelistPlayer(blessed_binary);

  kernel::ProcessId blessed = *nexus_.CreateProcess("player", blessed_binary);
  kernel::ProcessId homebuilt =
      *nexus_.CreateProcess("myplayer", ToBytes("home-built-player"));

  EXPECT_TRUE(server.RequestStream(blessed).ok());
  // Platform lock-down: a perfectly safe but unlisted player is rejected.
  Result<Bytes> denied = server.RequestStream(homebuilt);
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), ErrorCode::kPermissionDenied);
}

TEST_F(MoviePlayerTest, LogicalAttestationAcceptsAnyIsolatedPlayer) {
  ContentServer server(&nexus_, ContentServer::Mode::kLogicalAttestation, movie_);
  kernel::ProcessId player = *nexus_.CreateProcess("myplayer", ToBytes("home-built-player"));
  // The player has no channels to filesystem or netdriver.
  Result<Bytes> stream = server.RequestStream(player);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ(*stream, movie_);
}

TEST_F(MoviePlayerTest, LogicalAttestationRejectsLeakyPlayer) {
  ContentServer server(&nexus_, ContentServer::Mode::kLogicalAttestation, movie_);
  kernel::ProcessId leaky = *nexus_.CreateProcess("leaky", ToBytes("leaky-player"));
  kernel::ProcessId netdrv = *nexus_.CreateProcess("netdriver", ToBytes("nic"));
  kernel::PortId net_port = *nexus_.CreatePort(netdrv);
  nexus_.kernel().ConnectPort(leaky, net_port);  // Channel to the network!
  Result<Bytes> denied = server.RequestStream(leaky);
  EXPECT_FALSE(denied.ok());
}

// -------------------------------------------------------------- Not-A-Bot

TEST_F(AppsTest, NotABotAttestsHumanPresence) {
  kernel::ProcessId kbd = *nexus_.CreateProcess("keyboard", ToBytes("kbd-driver"));
  KeyboardDriver driver(&nexus_, kbd);
  for (int i = 0; i < 120; ++i) {
    driver.OnKeypress("session-1");
  }
  EXPECT_EQ(driver.Count("session-1"), 120u);

  Result<core::Certificate> cert = driver.AttestSession("session-1");
  ASSERT_TRUE(cert.ok());

  SpamClassifier classifier(tpm_.endorsement_public_key(), /*min_keypresses=*/50);
  Email human{"alice@example.com", "hi! lunch tomorrow?", cert->Serialize()};
  EXPECT_FALSE(classifier.IsSpam(human));
}

TEST_F(AppsTest, NotABotLowCountStillSpammy) {
  kernel::ProcessId kbd = *nexus_.CreateProcess("keyboard", ToBytes("kbd-driver"));
  KeyboardDriver driver(&nexus_, kbd);
  driver.OnKeypress("bot-session");
  Result<core::Certificate> cert = driver.AttestSession("bot-session");
  SpamClassifier classifier(tpm_.endorsement_public_key(), 50);
  Email bot{"bot@spam.com", "click here for FREE stuff", cert->Serialize()};
  EXPECT_TRUE(classifier.IsSpam(bot));
}

TEST_F(AppsTest, NotABotForgedCertificateRejected) {
  SpamClassifier classifier(tpm_.endorsement_public_key(), 50);
  Email forged{"bot@spam.com", "hello", ToBytes("not a certificate")};
  EXPECT_TRUE(classifier.IsSpam(forged));
}

TEST_F(AppsTest, NotABotHeuristicFallback) {
  SpamClassifier classifier(tpm_.endorsement_public_key(), 50);
  EXPECT_TRUE(classifier.IsSpam(Email{"x", "FREE money", {}}));
  EXPECT_FALSE(classifier.IsSpam(Email{"x", "see you at the meeting", {}}));
}

// -------------------------------------------------------------- CertiPics

TEST_F(AppsTest, CertiPicsLogVerifies) {
  kernel::ProcessId editor = *nexus_.CreateProcess("certipics", ToBytes("cp"));
  Image source = MakeImage(16, 16, 100);
  CertiPics pics(&nexus_, editor, source);
  ASSERT_TRUE(pics.Crop(2, 2, 8, 8).ok());
  ASSERT_TRUE(pics.Resize(4, 4).ok());
  ASSERT_TRUE(pics.ColorTransform(30).ok());
  EXPECT_EQ(pics.log().size(), 3u);
  EXPECT_TRUE(CertiPics::VerifyLog(source, pics.current(), pics.log(), {"clone"}).ok());
  EXPECT_TRUE(pics.AttestLog().ok());
}

TEST_F(AppsTest, CertiPicsDetectsDisallowedClone) {
  kernel::ProcessId editor = *nexus_.CreateProcess("certipics", ToBytes("cp"));
  Image source = MakeImage(16, 16, 100);
  CertiPics pics(&nexus_, editor, source);
  pics.ColorTransform(10);
  pics.Clone(0, 0, 8, 8, 4, 4);
  Status verdict = CertiPics::VerifyLog(source, pics.current(), pics.log(), {"clone"});
  EXPECT_EQ(verdict.code(), ErrorCode::kPermissionDenied);
  // The same log is fine under a policy that allows cloning.
  EXPECT_TRUE(CertiPics::VerifyLog(source, pics.current(), pics.log(), {}).ok());
}

TEST_F(AppsTest, CertiPicsDetectsTamperedLog) {
  kernel::ProcessId editor = *nexus_.CreateProcess("certipics", ToBytes("cp"));
  Image source = MakeImage(8, 8, 50);
  // A gradient, so cloning actually changes pixels.
  for (size_t i = 0; i < source.pixels.size(); ++i) {
    source.pixels[i] = static_cast<uint8_t>(i * 3);
  }
  CertiPics pics(&nexus_, editor, source);
  pics.ColorTransform(10);
  pics.Clone(0, 0, 4, 4, 2, 2);
  // Attacker hides the clone by deleting its entry.
  std::vector<TransformEntry> doctored = pics.log();
  doctored.pop_back();
  EXPECT_FALSE(CertiPics::VerifyLog(source, pics.current(), doctored, {"clone"}).ok());
  // Or by renaming the operation: the chain hash catches it.
  std::vector<TransformEntry> renamed = pics.log();
  renamed[1].operation = "color";
  EXPECT_FALSE(CertiPics::VerifyLog(source, pics.current(), renamed, {"clone"}).ok());
}

TEST_F(AppsTest, CertiPicsDetectsSubstitutedFinalImage) {
  kernel::ProcessId editor = *nexus_.CreateProcess("certipics", ToBytes("cp"));
  Image source = MakeImage(8, 8, 50);
  CertiPics pics(&nexus_, editor, source);
  pics.ColorTransform(10);
  Image other = MakeImage(8, 8, 99);
  EXPECT_FALSE(CertiPics::VerifyLog(source, other, pics.log(), {}).ok());
}

TEST_F(AppsTest, CertiPicsTransformSemantics) {
  kernel::ProcessId editor = *nexus_.CreateProcess("certipics", ToBytes("cp"));
  Image source = MakeImage(4, 4, 200);
  CertiPics pics(&nexus_, editor, source);
  pics.ColorTransform(100);  // Clamps at 255.
  EXPECT_EQ(pics.current().pixels[0], 255);
  ASSERT_TRUE(pics.Crop(0, 0, 2, 2).ok());
  EXPECT_EQ(pics.current().width, 2u);
  EXPECT_FALSE(pics.Crop(1, 1, 4, 4).ok());  // Out of bounds.
  EXPECT_FALSE(pics.Resize(0, 3).ok());
}

// ---------------------------------------------------------------- TruDocs

TEST(TruDocsTest, ExactQuoteAccepted) {
  ExcerptPolicy policy;
  std::string doc = "The committee found no evidence of wrongdoing in the matter.";
  EXPECT_TRUE(TruDocs::CheckExcerpt(doc, "found no evidence of wrongdoing", policy).ok());
}

TEST(TruDocsTest, ElisionPreservesOrder) {
  ExcerptPolicy policy;
  std::string doc = "The committee found no evidence of wrongdoing in the matter.";
  EXPECT_TRUE(TruDocs::CheckExcerpt(doc, "The committee ... in the matter.", policy).ok());
  // Reordering via ellipsis is caught.
  EXPECT_FALSE(TruDocs::CheckExcerpt(doc, "in the matter ... The committee", policy).ok());
}

TEST(TruDocsTest, MeaningDistortionRejected) {
  ExcerptPolicy policy;
  std::string doc = "The committee found no evidence of wrongdoing.";
  // The classic distortion: eliding "no" is caught because "found evidence"
  // (as a contiguous fragment) never occurs.
  Status verdict = TruDocs::CheckExcerpt(doc, "found evidence of wrongdoing", policy);
  EXPECT_FALSE(verdict.ok());
}

TEST(TruDocsTest, EditorialCommentsPerPolicy) {
  std::string doc = "Revenues rose sharply last quarter.";
  ExcerptPolicy allow;
  EXPECT_TRUE(TruDocs::CheckExcerpt(doc, "Revenues rose [in 2011] ... last quarter", allow)
                  .ok());
  ExcerptPolicy forbid;
  forbid.allow_editorial_comments = false;
  EXPECT_FALSE(
      TruDocs::CheckExcerpt(doc, "Revenues rose [in 2011] ... last quarter", forbid).ok());
}

TEST(TruDocsTest, CaseChangesPerPolicy) {
  std::string doc = "the quick brown fox";
  ExcerptPolicy allow;
  EXPECT_TRUE(TruDocs::CheckExcerpt(doc, "The Quick Brown", allow).ok());
  ExcerptPolicy strict;
  strict.allow_case_changes = false;
  EXPECT_FALSE(TruDocs::CheckExcerpt(doc, "The Quick Brown", strict).ok());
}

TEST(TruDocsTest, LimitsEnforced) {
  std::string doc = "aaa bbb ccc ddd eee fff";
  ExcerptPolicy tight;
  tight.max_fragments = 2;
  EXPECT_TRUE(TruDocs::CheckExcerpt(doc, "aaa ... ccc", tight).ok());
  EXPECT_FALSE(TruDocs::CheckExcerpt(doc, "aaa ... ccc ... eee", tight).ok());
  ExcerptPolicy small;
  small.max_total_length = 5;
  EXPECT_FALSE(TruDocs::CheckExcerpt(doc, "aaa bbb ccc", small).ok());
}

TEST(TruDocsTest, EmptyExcerptRejected) {
  ExcerptPolicy policy;
  EXPECT_FALSE(TruDocs::CheckExcerpt("doc", "...", policy).ok());
  EXPECT_FALSE(TruDocs::CheckExcerpt("doc", "[only comments]", policy).ok());
}

TEST(TruDocsTest, ParseExcerptSegments) {
  std::vector<Segment> segments = ParseExcerpt("start ... middle [note] end");
  ASSERT_EQ(segments.size(), 5u);
  EXPECT_EQ(segments[0].kind, SegmentKind::kFragment);
  EXPECT_EQ(segments[0].text, "start");
  EXPECT_EQ(segments[1].kind, SegmentKind::kEllipsis);
  EXPECT_EQ(segments[2].kind, SegmentKind::kFragment);
  EXPECT_EQ(segments[2].text, "middle");
  EXPECT_EQ(segments[3].kind, SegmentKind::kEditorial);
  EXPECT_EQ(segments[3].text, "note");
  EXPECT_EQ(segments[4].text, "end");
}

TEST_F(AppsTest, TruDocsCertifyIssuesLabel) {
  kernel::ProcessId td = *nexus_.CreateProcess("trudocs", ToBytes("td"));
  TruDocs trudocs(&nexus_, td);
  ExcerptPolicy policy;
  Result<core::LabelHandle> h =
      trudocs.CertifyExcerpt("the original document text", "original document", policy);
  ASSERT_TRUE(h.ok());
  nal::Formula label = *nexus_.engine().StoreFor(td).Get(*h);
  EXPECT_EQ(label->child1()->pred_name(), "excerptSpeaksFor");
}

// ------------------------------------------------------------------- BGP

TEST(BgpVerifierTest, ForwardingLongerPathAllowed) {
  BgpVerifier verifier(/*self_as=*/65001, {"10.0.0.0/8"});
  verifier.OnInbound({BgpMessage::Type::kAdvertise, "192.168.0.0/16", {65002, 65003}});
  EXPECT_TRUE(
      verifier.CheckOutbound({BgpMessage::Type::kAdvertise, "192.168.0.0/16",
                              {65001, 65002, 65003}})
          .ok());
}

TEST(BgpVerifierTest, RouteShorteningBlocked) {
  BgpVerifier verifier(65001, {});
  verifier.OnInbound(
      {BgpMessage::Type::kAdvertise, "192.168.0.0/16", {65002, 65003, 65004}});
  // Emitting a 2-hop path when the best received was 3 hops: fabrication.
  Status verdict = verifier.CheckOutbound(
      {BgpMessage::Type::kAdvertise, "192.168.0.0/16", {65001, 65002}});
  EXPECT_EQ(verdict.code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(verifier.stats().blocked, 1u);
}

TEST(BgpVerifierTest, ShorterInboundRelaxesBound) {
  BgpVerifier verifier(65001, {});
  verifier.OnInbound(
      {BgpMessage::Type::kAdvertise, "192.168.0.0/16", {65002, 65003, 65004}});
  verifier.OnInbound({BgpMessage::Type::kAdvertise, "192.168.0.0/16", {65005}});
  EXPECT_TRUE(verifier
                  .CheckOutbound({BgpMessage::Type::kAdvertise, "192.168.0.0/16",
                                  {65001, 65005}})
                  .ok());
}

TEST(BgpVerifierTest, FalseOriginationBlocked) {
  BgpVerifier verifier(65001, {"10.0.0.0/8"});
  EXPECT_TRUE(
      verifier.CheckOutbound({BgpMessage::Type::kAdvertise, "10.0.0.0/8", {65001}}).ok());
  EXPECT_FALSE(
      verifier.CheckOutbound({BgpMessage::Type::kAdvertise, "172.16.0.0/12", {65001}}).ok());
}

TEST(BgpVerifierTest, UnreceivedRouteBlocked) {
  BgpVerifier verifier(65001, {});
  EXPECT_FALSE(verifier
                   .CheckOutbound({BgpMessage::Type::kAdvertise, "192.168.0.0/16",
                                   {65001, 65002}})
                   .ok());
}

TEST(BgpVerifierTest, PathMustStartWithOwnAs) {
  BgpVerifier verifier(65001, {"10.0.0.0/8"});
  EXPECT_FALSE(
      verifier.CheckOutbound({BgpMessage::Type::kAdvertise, "10.0.0.0/8", {65999}}).ok());
  EXPECT_FALSE(verifier.CheckOutbound({BgpMessage::Type::kAdvertise, "10.0.0.0/8", {}}).ok());
}

TEST(BgpVerifierTest, WithdrawOnlyAdvertisedRoutes) {
  BgpVerifier verifier(65001, {"10.0.0.0/8"});
  EXPECT_FALSE(
      verifier.CheckOutbound({BgpMessage::Type::kWithdraw, "10.0.0.0/8", {}}).ok());
  verifier.CheckOutbound({BgpMessage::Type::kAdvertise, "10.0.0.0/8", {65001}});
  EXPECT_TRUE(verifier.CheckOutbound({BgpMessage::Type::kWithdraw, "10.0.0.0/8", {}}).ok());
  // Double withdrawal.
  EXPECT_FALSE(
      verifier.CheckOutbound({BgpMessage::Type::kWithdraw, "10.0.0.0/8", {}}).ok());
}

// ------------------------------------------------------- Java object store

TEST_F(AppsTest, JavaStoreFastPathWithLabel) {
  kernel::ProcessId vm = *nexus_.CreateProcess("jvm", ToBytes("jvm"));
  JavaObjectStore store(&nexus_, vm);
  ObjectStoreImage image;
  image.objects.push_back(StoredObject{{0, 3}, {1, 100000}});
  image.objects.push_back(StoredObject{{4}, {-5}});
  Bytes data = *store.Export(image);

  bool fast = false;
  Result<ObjectStoreImage> imported =
      store.Import(data, nexus_.engine().StoreFor(vm).All(), &fast);
  ASSERT_TRUE(imported.ok());
  EXPECT_TRUE(fast);
  EXPECT_EQ(imported->objects.size(), 2u);
  EXPECT_EQ(imported->objects[0].fields[1], 100000);
}

TEST_F(AppsTest, JavaStoreSlowPathValidates) {
  kernel::ProcessId vm = *nexus_.CreateProcess("jvm", ToBytes("jvm"));
  JavaObjectStore store(&nexus_, vm);
  ObjectStoreImage image;
  image.objects.push_back(StoredObject{{0}, {1}});
  Bytes data = image.Serialize();  // No label issued.

  bool fast = true;
  Result<ObjectStoreImage> imported = store.Import(data, {}, &fast);
  ASSERT_TRUE(imported.ok());
  EXPECT_FALSE(fast);
}

TEST_F(AppsTest, JavaStoreSlowPathCatchesInvariantViolation) {
  kernel::ProcessId vm = *nexus_.CreateProcess("jvm", ToBytes("jvm"));
  JavaObjectStore store(&nexus_, vm);
  ObjectStoreImage bad;
  bad.objects.push_back(StoredObject{{0}, {7}});  // boolean field with value 7.
  Bytes data = bad.Serialize();
  EXPECT_FALSE(store.Import(data, {}, nullptr).ok());
  // With a (fraudulent) fast-path label absent, validation catches it; and
  // tampering after export invalidates the hash, forcing the slow path.
  ObjectStoreImage good;
  good.objects.push_back(StoredObject{{0}, {1}});
  Bytes exported = *store.Export(good);
  exported[exported.size() - 1] = 7;  // boolean -> 7.
  bool fast = true;
  Result<ObjectStoreImage> imported =
      store.Import(exported, nexus_.engine().StoreFor(vm).All(), &fast);
  EXPECT_FALSE(fast);
  EXPECT_FALSE(imported.ok());
}

}  // namespace
}  // namespace nexus::apps
