// The kernel decision cache (§2.8).
//
// Caches guard verdicts keyed by the access-control tuple (subject,
// operation, object). The tuple is interned: lookups hash three integers,
// never strings (string-taking overloads intern-and-forward). Two
// invalidation granularities exist:
//   - a proof update clears the single affected entry;
//   - a setgoal may affect many entries, so the hash function places all
//     entries with the same (operation, object) into the same *subregion*
//     and setgoal clears that subregion.
// Subregion size is configurable and trades invalidation cost against
// collision rate (an ablation benchmark sweeps it).
//
// The cache is SHARDED by Mix64(subject) so a multi-worker authorization
// frontend scales: each shard holds its own subregion array, statistics,
// and lock, and a lookup or insert takes exactly one shard mutex. Because
// the shard function ignores (operation, object), a setgoal invalidation
// broadcasts the subregion clear to every shard; per-shard stats aggregate
// on read.
//
// Every (shard, subregion) carries a GENERATION, bumped on invalidation,
// Clear, and Resize. A caller computing a verdict outside the cache lock
// (the kernel's engine upcall) snapshots the generation before the upcall
// and inserts with InsertIfUnchanged: a concurrent setgoal/setproof that
// invalidated the subregion in between bumps the generation and the stale
// verdict is dropped instead of cached — preserving the serial decision
// order the flush-boundary discipline defines.
#ifndef NEXUS_KERNEL_DECISION_CACHE_H_
#define NEXUS_KERNEL_DECISION_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "kernel/types.h"
#include "util/metrics.h"

namespace nexus::kernel {

class DecisionCache {
 public:
  struct Config {
    // Per shard; total capacity is num_shards * num_subregions *
    // entries_per_subregion. (num_shards is last so legacy positional
    // initializers keep their meaning.)
    size_t num_subregions = 64;
    size_t entries_per_subregion = 64;
    size_t num_shards = 8;
  };

  // Snapshot view of the registry-backed per-shard counters ("cache.*" in
  // the metrics plane). Per-instance semantics are unchanged: a fresh cache
  // (or a Resize) starts from zero; the registry separately accumulates
  // process-lifetime totals.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t invalidated_entries = 0;
    uint64_t subregion_invalidations = 0;
  };

  DecisionCache();
  explicit DecisionCache(const Config& config);

  // Returns the cached verdict, if any. Thread-safe.
  std::optional<bool> Lookup(const AuthzRequest& request);
  std::optional<bool> Lookup(ProcessId subject, std::string_view operation,
                             std::string_view object) {
    return Lookup(AuthzRequest::Of(subject, operation, object));
  }

  // Records a verdict (only cacheable decisions should be inserted).
  // Thread-safe.
  void Insert(const AuthzRequest& request, bool allow);
  void Insert(ProcessId subject, std::string_view operation, std::string_view object,
              bool allow) {
    Insert(AuthzRequest::Of(subject, operation, object), allow);
  }

  // The current generation of the subregion holding `request`. Snapshot it
  // before computing a verdict outside the cache lock; pass it to
  // InsertIfUnchanged to drop the verdict if an invalidation raced it.
  uint64_t Generation(const AuthzRequest& request) const;

  // The generation of (op, obj)'s subregion in EVERY shard, in shard
  // order. This is the mutation log's stamp: read after an invalidation
  // bump it tells a trace auditor exactly which cached-verdict window the
  // mutation retired, per shard. Each shard is locked in turn (not a
  // global snapshot; generations only grow, which is all the auditor
  // needs).
  std::vector<uint64_t> SubregionGenerations(OpId op, ObjectId obj) const;

  // The subregion index function, exposed so an external auditor can
  // compute which subregion a (op, obj) pair lands in. Subject is
  // deliberately excluded (see SubregionIndex in the .cc).
  static size_t SubregionIndexOf(OpId op, ObjectId obj, size_t num_subregions);

  // Inserts `allow` only if the subregion generation still equals
  // `generation` (no invalidation landed since the snapshot). Returns
  // whether the insert happened. Thread-safe.
  bool InsertIfUnchanged(const AuthzRequest& request, bool allow, uint64_t generation);

  // Proof update: clears the single matching entry (it lives only in the
  // subject's shard) and bumps that subregion's generation. Thread-safe.
  // When `post_gen` is non-null it receives the EXACT post-bump generation
  // of the bumped (shard, subregion) — read under the same lock as the
  // bump, so it cannot overshoot (the mutation-log auditor depends on
  // exact stamps to order mutations on the generation axis).
  void InvalidateEntry(const AuthzRequest& request, uint64_t* post_gen = nullptr);
  void InvalidateEntry(ProcessId subject, std::string_view operation,
                       std::string_view object) {
    InvalidateEntry(AuthzRequest::Of(subject, operation, object));
  }

  // setgoal: clears the subregion holding all entries for (operation,
  // object) in EVERY shard (subjects hash across shards). Thread-safe.
  // `post_gens`, when non-null, receives the exact post-bump generation of
  // every shard (same exactness contract as InvalidateEntry).
  void InvalidateSubregion(OpId op, ObjectId obj,
                           std::vector<uint64_t>* post_gens = nullptr);
  void InvalidateSubregion(std::string_view operation, std::string_view object) {
    InvalidateSubregion(InternOp(operation), InternObject(object));
  }

  // Drops everything (the cache is soft state; this is always safe).
  void Clear();

  // Runtime resize (any field, including the shard count); drops contents.
  // Not safe concurrently with other operations — quiesce the frontend
  // first (the cache is reconfigured, not just mutated).
  void Resize(const Config& config);

  // Aggregated over all shards (by value: shards tally independently).
  Stats stats() const;
  // One shard's tally, for tests and ablation benchmarks.
  Stats shard_stats(size_t shard) const;
  // Which shard `subject`'s entries live in.
  size_t ShardOf(ProcessId subject) const;

  const Config& config() const { return config_; }

 private:
  struct Entry {
    // The subregion generation this entry was inserted under; the entry is
    // live iff it equals the current generation (epoch invalidation:
    // clearing a subregion is one counter bump, not an entry walk).
    // Generations start at 1, so a zero-initialized entry is never live.
    uint64_t generation = 0;
    bool allow = false;
    ProcessId subject = 0;
    OpId op = 0;
    ObjectId obj = 0;
  };

  // A shard owns its mutex; unique_ptr keeps the vector reconfigurable.
  // Tallies are registry instruments (metrics plane, "cache.*"): relaxed
  // atomics, one set per shard so shards never contend on a shared
  // counter; stats() sums them, the registry snapshot aggregates them.
  struct Shard {
    mutable std::mutex mu;
    std::vector<Entry> entries;       // num_subregions * entries_per_subregion
    std::vector<uint64_t> generations;  // per subregion
    metrics::Counter* hits = nullptr;
    metrics::Counter* misses = nullptr;
    metrics::Counter* insertions = nullptr;
    metrics::Counter* invalidated_entries = nullptr;
    metrics::Counter* subregion_invalidations = nullptr;
  };

  size_t SubregionIndex(OpId op, ObjectId obj) const;
  // The matching entry in `shard`, or nullptr. Caller holds shard.mu.
  Entry* FindLocked(Shard& shard, const AuthzRequest& request);
  void InsertLocked(Shard& shard, const AuthzRequest& request, bool allow);

  Config config_;
  // Declared before shards_: shard counters live in the group and must
  // outlive them (destruction runs in reverse order).
  metrics::MetricGroup metrics_{&metrics::Registry::Global(), "cache"};
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_DECISION_CACHE_H_
