// ReadRedactionMonitor — the reference reply-rewriting monitor.
//
// Interposed on the fileserver port, it demonstrates what STRUCTURAL
// reply interposition buys (§5.1): the monitor pattern-matches the typed
// read reply — one u64 length slot plus the data block — clamps the
// length in place (ArgVec::SetScalar) and redacts a configured byte range
// of the content, without parsing a single character of text. An
// interposed typed read therefore moves ZERO heap strings end to end;
// tests pin that with IpcTextPayloadCount.
#ifndef NEXUS_SERVICES_READ_REDACTOR_H_
#define NEXUS_SERVICES_READ_REDACTOR_H_

#include <cstdint>

#include "kernel/kernel.h"
#include "util/metrics.h"

namespace nexus::services {

struct RedactionPolicy {
  // Longest read reply the monitor lets through; longer replies are
  // truncated (data AND length slot — the two must stay consistent).
  uint64_t max_read_length = UINT64_MAX;
  // Byte range [redact_begin, redact_end) of the file content to mask,
  // in post-clamp reply coordinates. Empty range = no masking.
  uint64_t redact_begin = 0;
  uint64_t redact_end = 0;
  uint8_t fill = '#';
};

class ReadRedactionMonitor : public kernel::Interceptor {
 public:
  explicit ReadRedactionMonitor(RedactionPolicy policy);

  // Call direction: pass-through (this monitor constrains what callers
  // SEE, not what they may do).
  kernel::InterposeVerdict OnCall(const kernel::IpcContext& context,
                                  kernel::IpcMessage& message) override;

  // Reply direction: structural rewrite of successful read replies.
  kernel::InterposeVerdict OnReply(const kernel::IpcContext& context,
                                   const kernel::IpcMessage& request,
                                   kernel::IpcReply& reply) override;

  uint64_t rewrites() const { return rewrites_->Value(); }
  const RedactionPolicy& policy() const { return policy_; }

 private:
  RedactionPolicy policy_;
  kernel::OpId read_op_;  // Hoisted once; matching a reply is an integer compare.
  metrics::MetricGroup metrics_{&metrics::Registry::Global(), "redactor"};
  metrics::Counter* rewrites_ = metrics_.NewCounter("rewrites");
};

}  // namespace nexus::services

#endif  // NEXUS_SERVICES_READ_REDACTOR_H_
