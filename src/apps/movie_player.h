// The movie player scenario (§4, "Other Applications").
//
// A content owner will stream only to players that cannot leak the stream.
// Two modes are implemented:
//   - hash whitelist (axiomatic baseline): only pre-certified binaries play
//     — platform lock-down: a user-built player is rejected even if it is
//     provably incapable of copying the stream;
//   - logical attestation: the player presents analyzer labels showing it
//     lacks IPC paths to disk and network; its binary hash is never
//     divulged, and any player satisfying the policy is accepted.
#ifndef NEXUS_APPS_MOVIE_PLAYER_H_
#define NEXUS_APPS_MOVIE_PLAYER_H_

#include <string>

#include "core/nexus.h"
#include "kernel/hash_attestation.h"
#include "services/ipc_analyzer.h"
#include "services/safety_certifier.h"

namespace nexus::apps {

class ContentServer {
 public:
  enum class Mode { kHashWhitelist, kLogicalAttestation };

  ContentServer(core::Nexus* nexus, Mode mode, Bytes content);

  // Whitelist management (axiomatic mode).
  void WhitelistPlayer(ByteView binary) { whitelist_.AllowBinary(binary); }

  // Forbidden reach for analytic mode (defaults: filesystem + netdriver).
  void SetForbiddenTargets(std::vector<std::string> targets);

  // The player requests the stream; the server decides per its mode.
  Result<Bytes> RequestStream(kernel::ProcessId player);

  Mode mode() const { return mode_; }

 private:
  core::Nexus* nexus_;
  Mode mode_;
  Bytes content_;
  kernel::HashWhitelist whitelist_;
  std::vector<std::string> forbidden_targets_ = {"filesystem", "netdriver"};
  kernel::ProcessId analyzer_pid_ = 0;
  kernel::ProcessId certifier_pid_ = 0;
};

}  // namespace nexus::apps

#endif  // NEXUS_APPS_MOVIE_PLAYER_H_
