// Distributed attestation costs: the cross-instance analogue of Fig. 6's
// three-orders-of-magnitude gap between system-backed and cryptographic
// credentials.
//
//   handshake    : full attested channel establishment (2 NK signatures,
//                  4 RSA verifications, key derivation)
//   cert trip    : externalize a label, ship it, verify + import remotely
//   remote query : one authority consultation crossing the channel
//                  (HMAC + AES framing both ways, no RSA)
//
// Expected shape: handshake and certificate shipping are RSA-dominated;
// established-channel queries are symmetric-crypto cheap, which is why
// untransferable authority answers stay practical over the network.
//
// Mesh sweep (NEXUS_MESH_OUT): in addition to the microbenchmarks above,
// setting NEXUS_MESH_OUT=<path> runs a federation-mesh sweep over node
// count (2/4/8/16) x link drop rate (0/1/5%) and writes BENCH_mesh-style
// JSON with, per configuration, the simulated-clock time and anti-entropy
// round count to full registry convergence plus the mean simulated latency
// of a majority-quorum vouch across the converged mesh. The process exits
// nonzero if any configuration fails to converge or to reach quorum, so CI
// can gate on the file's presence alone.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_main.h"

#include "core/authority.h"
#include "nal/parser.h"
#include "net/cert_exchange.h"
#include "net/mesh/mesh.h"
#include "net/node.h"
#include "net/remote_authority.h"
#include "net/transport.h"
#include "tpm/tpm.h"

namespace {

using nexus::Rng;
using nexus::ToBytes;

struct NetHarness {
  NetHarness()
      : rng_a(101),
        rng_b(202),
        tpm_a(rng_a),
        tpm_b(rng_b),
        nexus_a(&tpm_a, nexus::core::NexusOptions{.seed = 1}),
        nexus_b(&tpm_b, nexus::core::NexusOptions{.seed = 2}) {
    nexus_a.RegisterPeer("b", tpm_b.endorsement_public_key());
    nexus_b.RegisterPeer("a", tpm_a.endorsement_public_key());
  }

  Rng rng_a, rng_b;
  nexus::tpm::Tpm tpm_a, tpm_b;
  nexus::core::Nexus nexus_a, nexus_b;
};

NetHarness& H() {
  static NetHarness harness;
  return harness;
}

void BM_AttestedHandshake(benchmark::State& state) {
  NetHarness& h = H();
  for (auto _ : state) {
    nexus::net::Transport transport(7);
    nexus::net::NetNode node_a(&h.nexus_a, &transport, "a");
    nexus::net::NetNode node_b(&h.nexus_b, &transport, "b");
    auto channel = node_a.Connect("b");
    benchmark::DoNotOptimize(channel);
    if (!channel.ok() || !(*channel)->established()) {
      state.SkipWithError("handshake failed");
      return;
    }
  }
}
BENCHMARK(BM_AttestedHandshake)->Unit(benchmark::kMicrosecond);

struct EstablishedPair {
  EstablishedPair()
      : transport(7),
        node_a(&H().nexus_a, &transport, "a"),
        node_b(&H().nexus_b, &transport, "b"),
        importer(&node_a, *H().nexus_a.CreateProcess("gateway", ToBytes("g"))),
        pusher(&node_b, 0),
        prover(*H().nexus_b.CreateProcess("bench-prover", ToBytes("p"))),
        authority_service(&node_b),
        always_yes(
            [](const nexus::nal::Formula&) { return true; },
            [](const nexus::nal::Formula&) { return true; }),
        remote(&node_a, "b", nullptr, /*default_timeout_us=*/1000000) {
    authority_service.AddAuthority(&always_yes);
    node_a.Connect("b");
  }

  nexus::net::Transport transport;
  nexus::net::NetNode node_a, node_b;
  nexus::net::CertificateExchange importer, pusher;
  nexus::kernel::ProcessId prover;
  nexus::net::AuthorityService authority_service;
  nexus::core::LambdaAuthority always_yes;
  nexus::net::RemoteAuthority remote;
};

EstablishedPair& P() {
  static EstablishedPair pair;
  return pair;
}

void BM_CertificateRoundTrip(benchmark::State& state) {
  EstablishedPair& p = P();
  uint64_t i = 0;
  for (auto _ : state) {
    // A fresh statement each time so import is never the idempotent no-op.
    auto label = H().nexus_b.engine().Say(p.prover, "bench" + std::to_string(i++) + "()");
    auto shipped = p.pusher.PushLabel("a", p.prover, *label);
    benchmark::DoNotOptimize(shipped);
    if (!shipped.ok()) {
      state.SkipWithError("certificate push failed");
      return;
    }
  }
}
BENCHMARK(BM_CertificateRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_RemoteAuthorityQuery(benchmark::State& state) {
  EstablishedPair& p = P();
  nexus::nal::Formula statement = *nexus::nal::ParseFormula("Session says sessionActive(u)");
  for (auto _ : state) {
    bool vouched = p.remote.Vouches(statement);
    benchmark::DoNotOptimize(vouched);
    if (!vouched) {
      state.SkipWithError("remote authority denied");
      return;
    }
  }
}
BENCHMARK(BM_RemoteAuthorityQuery)->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------------ mesh sweep

// N chain-pinned instances on one lossy fabric: trust is seeded between
// ADJACENT nodes only and gossip carries it the rest of the way, so the
// convergence time measured here includes the transitive-trust walk.
struct MeshSweepWorld {
  MeshSweepWorld(size_t n, double drop, uint64_t transport_seed)
      : transport(transport_seed) {
    for (size_t i = 0; i < n; ++i) {
      Rng rng(9000 + 17 * i);
      tpms.push_back(std::make_unique<nexus::tpm::Tpm>(rng));
      nexuses.push_back(std::make_unique<nexus::core::Nexus>(
          tpms.back().get(), nexus::core::NexusOptions{.seed = 50 + i}));
    }
    for (size_t i = 0; i + 1 < n; ++i) {
      (void)nexuses[i]->RegisterPeer(Name(i + 1), tpms[i + 1]->endorsement_public_key());
      (void)nexuses[i + 1]->RegisterPeer(Name(i), tpms[i]->endorsement_public_key());
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        transport.SetLink(Name(i), Name(j),
                          nexus::net::LinkConfig{.latency_us = 200, .drop_rate = drop});
      }
    }
    for (size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<nexus::net::NetNode>(nexuses[i].get(), &transport,
                                                            Name(i)));
      meshes.push_back(std::make_unique<nexus::net::mesh::MeshNode>(nodes.back().get()));
    }
  }

  static nexus::net::NodeId Name(size_t i) { return "n" + std::to_string(i); }

  nexus::net::Transport transport;
  std::vector<std::unique_ptr<nexus::tpm::Tpm>> tpms;
  std::vector<std::unique_ptr<nexus::core::Nexus>> nexuses;
  std::vector<std::unique_ptr<nexus::net::NetNode>> nodes;
  std::vector<std::unique_ptr<nexus::net::mesh::MeshNode>> meshes;
};

struct MeshSweepResult {
  size_t nodes = 0;
  double drop = 0.0;
  bool converged = false;
  size_t converge_rounds = 0;
  uint64_t converge_sim_us = 0;
  size_t quorum_k = 0;
  size_t vouch_attempts = 0;
  size_t vouch_ok = 0;
  uint64_t vouch_sim_us_mean = 0;
};

// Advances the simulated clock by `us` without touching mesh state: the
// clock only moves when a message delivers, so ship one throwaway message
// across a dedicated link with exactly that latency.
struct NullSink : nexus::net::Endpoint {
  void OnMessage(const nexus::net::Message&) override {}
};

void AdvanceSimClock(nexus::net::Transport& transport, uint64_t us) {
  static NullSink sink;
  transport.Attach("bench_clockhand", &sink);
  transport.SetLink("bench_ticker", "bench_clockhand",
                    nexus::net::LinkConfig{/*latency_us=*/us, /*drop_rate=*/0.0});
  (void)transport.Send(nexus::net::Message{"bench_ticker", "bench_clockhand",
                                           transport.AllocateChannelId(), "tick", {}});
  transport.DeliverAll();
}

MeshSweepResult RunMeshConfig(size_t n, double drop) {
  MeshSweepResult result;
  result.nodes = n;
  result.drop = drop;
  MeshSweepWorld w(n, drop, /*transport_seed=*/1000 + n);

  uint64_t t_start = w.transport.now_us();
  // Joins may lose their handshake or push under drop; anti-entropy below
  // is what guarantees progress, so one retried attempt each is enough.
  for (size_t i = 1; i < n; ++i) {
    for (int attempt = 0; attempt < 20; ++attempt) {
      if (w.meshes[i]->Join(MeshSweepWorld::Name(i - 1)).ok()) {
        break;
      }
    }
    w.transport.DeliverAll();
  }
  const size_t max_rounds = 400;
  for (size_t round = 1; round <= max_rounds; ++round) {
    for (auto& mesh : w.meshes) {
      mesh->AntiEntropy();
    }
    w.transport.DeliverAll();
    bool converged = true;
    for (auto& mesh : w.meshes) {
      converged = converged && mesh->Digest() == w.meshes[0]->Digest() &&
                  mesh->registry().peer_count() == n;
    }
    if (converged) {
      result.converged = true;
      result.converge_rounds = round;
      result.converge_sim_us = w.transport.now_us() - t_start;
      break;
    }
  }
  if (!result.converged) {
    return result;
  }

  // Majority quorum over every other node's always-yes session authority.
  nexus::core::LambdaAuthority always_yes([](const nexus::nal::Formula&) { return true; },
                                          [](const nexus::nal::Formula&) { return true; });
  std::vector<std::unique_ptr<nexus::net::AuthorityService>> services;
  std::vector<std::unique_ptr<nexus::net::RemoteAuthority>> remotes;
  for (size_t i = 1; i < n; ++i) {
    services.push_back(std::make_unique<nexus::net::AuthorityService>(w.nodes[i].get()));
    services.back()->AddAuthority(&always_yes);
    remotes.push_back(std::make_unique<nexus::net::RemoteAuthority>(
        w.nodes[0].get(), MeshSweepWorld::Name(i), nullptr,
        /*default_timeout_us=*/50000));
  }
  nexus::net::mesh::QuorumPolicy policy;
  policy.quorum = (n - 1) / 2 + 1;
  result.quorum_k = policy.quorum;
  nexus::net::mesh::QuorumAuthority quorum(&w.transport, policy);
  for (auto& remote : remotes) {
    quorum.AddMember(remote.get());
  }

  nexus::nal::Formula statement =
      *nexus::nal::ParseFormula("Session says sessionActive(bench)");
  // One uncounted warm-up: convergence under loss can leave channels
  // half-established (the responder missed the final auth), and the first
  // data message is what triggers the re-ack heal — at the cost of that
  // query. Measured attempts then run on healed channels, spaced past the
  // backoff window so a member sidelined by an unlucky drop returns (the
  // simulated clock only moves on deliveries, so back-to-back queries
  // would pin sidelined members in backoff forever).
  (void)quorum.VouchesWithin(statement, /*timeout_us=*/50000);
  // Deny-on-no-quorum is the SAFE answer under loss, not a failure of the
  // mesh: with a 1-of-1 or 2-of-3 quorum a single dropped message denies
  // correctly. Availability comes from the caller retrying, so each
  // measured query gets up to 3 tries (clock-spaced past backoff) and the
  // latency recorded is the successful try's.
  const size_t kVouchIters = 5;
  const int kTriesPerQuery = 3;
  uint64_t total_us = 0;
  for (size_t i = 0; i < kVouchIters; ++i) {
    for (int attempt = 0; attempt < kTriesPerQuery; ++attempt) {
      AdvanceSimClock(w.transport, policy.backoff_us + 50000);
      uint64_t t0 = w.transport.now_us();
      bool ok = quorum.VouchesWithin(statement, /*timeout_us=*/50000);
      if (ok) {
        ++result.vouch_ok;
        total_us += w.transport.now_us() - t0;
        break;
      }
    }
  }
  result.vouch_attempts = kVouchIters;
  result.vouch_sim_us_mean = result.vouch_ok > 0 ? total_us / result.vouch_ok : 0;
  return result;
}

int RunMeshSweep(const char* out_path) {
  const size_t kNodeCounts[] = {2, 4, 8, 16};
  const double kDropRates[] = {0.0, 0.01, 0.05};
  std::vector<MeshSweepResult> results;
  bool ok = true;
  for (size_t n : kNodeCounts) {
    for (double drop : kDropRates) {
      MeshSweepResult r = RunMeshConfig(n, drop);
      std::printf("mesh n=%zu drop=%.2f converged=%d rounds=%zu sim_us=%llu "
                  "quorum_k=%zu vouch=%zu/%zu mean_us=%llu\n",
                  r.nodes, r.drop, r.converged ? 1 : 0, r.converge_rounds,
                  static_cast<unsigned long long>(r.converge_sim_us), r.quorum_k,
                  r.vouch_ok, r.vouch_attempts,
                  static_cast<unsigned long long>(r.vouch_sim_us_mean));
      ok = ok && r.converged && r.vouch_ok == r.vouch_attempts;
      results.push_back(r);
    }
  }
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"mesh_federation\",\n");
  std::fprintf(f, "  \"link_latency_us\": 200,\n  \"all_converged\": %s,\n",
               ok ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const MeshSweepResult& r = results[i];
    std::fprintf(f,
                 "    {\"nodes\": %zu, \"drop\": %.2f, \"converged\": %s, "
                 "\"converge_rounds\": %zu, \"converge_sim_us\": %llu, "
                 "\"quorum_k\": %zu, \"vouch_ok\": %zu, \"vouch_attempts\": %zu, "
                 "\"vouch_sim_us_mean\": %llu}%s\n",
                 r.nodes, r.drop, r.converged ? "true" : "false", r.converge_rounds,
                 static_cast<unsigned long long>(r.converge_sim_us), r.quorum_k,
                 r.vouch_ok, r.vouch_attempts,
                 static_cast<unsigned long long>(r.vouch_sim_us_mean),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  char arg0_default[] = "benchmark";
  char* args_default = arg0_default;
  if (!argv) {
    argc = 1;
    argv = &args_default;
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  int rc = 0;
  if (const char* out = std::getenv("NEXUS_MESH_OUT")) {
    rc = RunMeshSweep(out);
  }
  ::nexus::metrics::DumpRegistryToEnvPath();
  return rc;
}
