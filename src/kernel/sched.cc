#include "kernel/sched.h"

#include <algorithm>
#include <cstddef>

namespace nexus::kernel {

Status StrideScheduler::AddClient(ProcessId pid, uint32_t weight) {
  if (weight == 0) {
    return InvalidArgument("weight must be positive");
  }
  if (clients_.contains(pid)) {
    return AlreadyExists("client already scheduled");
  }
  // A new client starts at the minimum live pass so it cannot monopolize
  // past quanta nor be starved.
  uint64_t min_pass = 0;
  if (!clients_.empty()) {
    min_pass = UINT64_MAX;
    for (const auto& [id, c] : clients_) {
      min_pass = std::min(min_pass, c.pass);
    }
  }
  Client c;
  c.weight = weight;
  c.stride = kStrideUnit / weight;
  c.pass = min_pass;
  clients_[pid] = c;
  return OkStatus();
}

Status StrideScheduler::RemoveClient(ProcessId pid) {
  if (clients_.erase(pid) == 0) {
    return NotFound("client not scheduled");
  }
  return OkStatus();
}

Status StrideScheduler::SetWeight(ProcessId pid, uint32_t weight) {
  if (weight == 0) {
    return InvalidArgument("weight must be positive");
  }
  auto it = clients_.find(pid);
  if (it == clients_.end()) {
    return NotFound("client not scheduled");
  }
  it->second.weight = weight;
  it->second.stride = kStrideUnit / weight;
  return OkStatus();
}

Result<ProcessId> StrideScheduler::Tick() {
  if (clients_.empty()) {
    return FailedPrecondition("no runnable clients");
  }
  auto best = clients_.begin();
  for (auto it = clients_.begin(); it != clients_.end(); ++it) {
    if (it->second.pass < best->second.pass) {
      best = it;
    }
  }
  best->second.pass += best->second.stride;
  ++best->second.quanta;
  ++total_quanta_;
  return best->first;
}

uint64_t StrideScheduler::QuantaReceived(ProcessId pid) const {
  auto it = clients_.find(pid);
  return it == clients_.end() ? 0 : it->second.quanta;
}

std::vector<ProcessId> StrideScheduler::Clients() const {
  std::vector<ProcessId> out;
  out.reserve(clients_.size());
  for (const auto& [pid, c] : clients_) {
    out.push_back(pid);
  }
  return out;
}

uint32_t StrideScheduler::Weight(ProcessId pid) const {
  auto it = clients_.find(pid);
  return it == clients_.end() ? 0 : it->second.weight;
}

Status RoundRobinScheduler::AddClient(ProcessId pid, uint32_t weight) {
  if (clients_.contains(pid)) {
    return AlreadyExists("client already scheduled");
  }
  clients_[pid] = Client{weight, 0};
  return OkStatus();
}

Status RoundRobinScheduler::RemoveClient(ProcessId pid) {
  if (clients_.erase(pid) == 0) {
    return NotFound("client not scheduled");
  }
  return OkStatus();
}

Status RoundRobinScheduler::SetWeight(ProcessId pid, uint32_t weight) {
  auto it = clients_.find(pid);
  if (it == clients_.end()) {
    return NotFound("client not scheduled");
  }
  it->second.weight = weight;  // Recorded but ignored by selection.
  return OkStatus();
}

Result<ProcessId> RoundRobinScheduler::Tick() {
  if (clients_.empty()) {
    return FailedPrecondition("no runnable clients");
  }
  size_t index = next_index_ % clients_.size();
  next_index_ = (next_index_ + 1) % clients_.size();
  auto it = clients_.begin();
  std::advance(it, static_cast<ptrdiff_t>(index));
  ++it->second.quanta;
  ++total_quanta_;
  return it->first;
}

uint64_t RoundRobinScheduler::QuantaReceived(ProcessId pid) const {
  auto it = clients_.find(pid);
  return it == clients_.end() ? 0 : it->second.quanta;
}

std::vector<ProcessId> RoundRobinScheduler::Clients() const {
  std::vector<ProcessId> out;
  out.reserve(clients_.size());
  for (const auto& [pid, c] : clients_) {
    out.push_back(pid);
  }
  return out;
}

uint32_t RoundRobinScheduler::Weight(ProcessId pid) const {
  auto it = clients_.find(pid);
  return it == clients_.end() ? 0 : it->second.weight;
}

}  // namespace nexus::kernel
