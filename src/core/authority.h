// Authorities (§2.7).
//
// An authority attests to the veracity of a statement only when asked and
// never in transferable form: the yes/no answer travels back over the
// querying IPC channel and may not be stored, cached, or forwarded. This
// split — indefinitely-cacheable labels vs untransferable authority
// answers — is what lets Nexus avoid a revocation infrastructure.
#ifndef NEXUS_CORE_AUTHORITY_H_
#define NEXUS_CORE_AUTHORITY_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "kernel/ipc.h"
#include "nal/formula.h"

namespace nexus::core {

// A handle to an in-flight multi-statement authority consultation. Wait()
// completes the round trip (for remote authorities it pumps the simulated
// fabric until the reply lands or the deadline passes) and returns one
// answer per issued statement, aligned with the issuing order. Call Wait()
// exactly once; answers follow the §2.7 rules — fresh, untransferable,
// consumed by the decision batch that asked and nothing else.
class VouchFuture {
 public:
  virtual ~VouchFuture() = default;
  virtual std::vector<bool> Wait() = 0;
};

// A batch answer that distinguishes "the authority said no" from "no answer
// arrived at all". Both still read as deny to a guard — fail closed — but a
// quorum layer aggregating several authorities needs the difference: an
// unresponsive member is skipped/backed off, a responsive deny is a vote.
struct VouchOutcome {
  std::vector<bool> answers;  // One per issued statement, issue order.
  bool responsive = true;     // False: timeout / loss / unreachable peer —
                              // `answers` is all-false filler, not votes.
};

// The detailed analogue of VouchFuture; same single-Wait contract, same
// §2.7 freshness rules on the answers.
class DetailedVouchFuture {
 public:
  virtual ~DetailedVouchFuture() = default;
  virtual VouchOutcome Wait() = 0;
};

class Authority {
 public:
  virtual ~Authority() = default;
  // Does this authority currently believe `statement` holds? The statement
  // is typically of the form `Self says <condition over dynamic state>`.
  virtual bool Vouches(const nal::Formula& statement) = 0;
  // Which statements this authority is willing to evaluate at all (used by
  // the guard to route queries).
  virtual bool Handles(const nal::Formula& statement) const = 0;

  // True for authorities whose answer crosses an instance boundary (a
  // RemoteAuthority in src/net). The guard budgets those queries: a remote
  // authority that cannot answer within the deadline is treated as a DENY —
  // fail closed, never block a guard evaluation on a dead peer.
  virtual bool IsRemote() const { return false; }
  // Deadline-bounded query. Local authorities answer instantly and ignore
  // the budget; remote ones translate it into a wire-level timeout.
  virtual bool VouchesWithin(const nal::Formula& statement, uint64_t timeout_us) {
    (void)timeout_us;
    return Vouches(statement);
  }

  // Multi-statement query. Local authorities answer element-wise; a remote
  // authority overrides this to ship all statements in ONE attested round
  // trip (the batch-guard path's duplicate-query-collapsing depends on it).
  // Answers align with `statements`; like single answers they are fresh,
  // untransferable, and must not outlive the consuming decision batch.
  virtual std::vector<bool> VouchBatch(std::span<const nal::Formula> statements,
                                       uint64_t timeout_us) {
    std::vector<bool> answers;
    answers.reserve(statements.size());
    for (const nal::Formula& statement : statements) {
      answers.push_back(VouchesWithin(statement, timeout_us));
    }
    return answers;
  }

  // Starts a VouchBatch without blocking on the answers, so a guard can
  // overlap remote round trips with local proof checking (the async batch
  // pipeline). Local authorities answer immediately and return a ready
  // future; a RemoteAuthority overrides this to put the wire message in
  // flight NOW and collect it at Wait(). The deadline clock starts at
  // issue time, exactly as the blocking path's does.
  virtual std::unique_ptr<VouchFuture> VouchBatchAsync(
      std::span<const nal::Formula> statements, uint64_t timeout_us);

  // VouchBatchAsync with responsiveness attached (see VouchOutcome). The
  // default wraps VouchBatch and is always responsive — correct for local
  // authorities, which cannot lose answers. RemoteAuthority overrides it;
  // QuorumAuthority (src/net/mesh) consumes it to tell deny-votes from
  // dead peers.
  virtual std::unique_ptr<DetailedVouchFuture> VouchBatchAsyncDetailed(
      std::span<const nal::Formula> statements, uint64_t timeout_us);
};

// Adapts an Authority to an IPC port: operation "check" with the formula
// text in args[0]; the reply's value is 1 (vouches) or 0. The kernel's
// port-to-process binding is what makes the answer attributable.
class AuthorityPortHandler : public kernel::PortHandler {
 public:
  explicit AuthorityPortHandler(Authority* authority) : authority_(authority) {}
  kernel::IpcReply Handle(const kernel::IpcContext& context,
                          const kernel::IpcMessage& message) override;

 private:
  Authority* authority_;
};

// A function-backed authority for simple dynamic predicates.
class LambdaAuthority : public Authority {
 public:
  using Predicate = std::function<bool(const nal::Formula&)>;
  LambdaAuthority(Predicate handles, Predicate vouches)
      : handles_(std::move(handles)), vouches_(std::move(vouches)) {}

  bool Vouches(const nal::Formula& statement) override { return vouches_(statement); }
  bool Handles(const nal::Formula& statement) const override { return handles_(statement); }

 private:
  Predicate handles_;
  Predicate vouches_;
};

}  // namespace nexus::core

#endif  // NEXUS_CORE_AUTHORITY_H_
