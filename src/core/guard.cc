#include "core/guard.h"

#include "crypto/sha256.h"
#include "nal/parser.h"
#include "nal/proof.h"

namespace nexus::core {

Guard::Guard(kernel::Kernel* kernel) : Guard(kernel, Config{}) {}

Guard::Guard(kernel::Kernel* kernel, const Config& config) : kernel_(kernel), config_(config) {}

void Guard::AddEmbeddedAuthority(Authority* authority) {
  embedded_authorities_.push_back(authority);
}

void Guard::AddAuthorityPort(kernel::PortId port) { authority_ports_.push_back(port); }

void Guard::AddRemoteAuthority(Authority* authority) {
  remote_authorities_.push_back(authority);
}

bool Guard::QueryAuthorities(const nal::Formula& statement) {
  ++stats_.authority_queries;
  for (Authority* authority : embedded_authorities_) {
    if (authority->Handles(statement)) {
      return authority->Vouches(statement);
    }
  }
  // External authorities: one IPC round trip each. The answer is consumed
  // immediately and never stored (§2.7).
  for (kernel::PortId port : authority_ports_) {
    kernel::IpcMessage query;
    query.operation = "check";
    query.args.push_back(statement->ToString());
    kernel::IpcReply reply = kernel_->Call(kernel::kKernelProcessId, port, query);
    if (reply.status.ok()) {
      return reply.value == 1;
    }
    if (reply.status.code() != ErrorCode::kNotFound) {
      return false;  // Authority reachable but erroring: fail closed.
    }
  }
  // Remote authorities: a query crossing the instance boundary, budgeted by
  // the configured deadline. No answer in time means DENY (§2.7 answers are
  // fresh-or-nothing; a stale late answer is worthless).
  for (Authority* authority : remote_authorities_) {
    if (authority->Handles(statement)) {
      ++stats_.remote_queries;
      return authority->VouchesWithin(statement, config_.remote_query_timeout_us);
    }
  }
  return false;  // No authority evaluates this statement.
}

void Guard::InsertCacheEntry(kernel::ProcessId quota_root, const std::string& key,
                             bool verdict) {
  auto evict = [this](std::list<CacheEntry>::iterator it) {
    root_usage_[it->quota_root] -= 1;
    cache_index_.erase(it->key);
    lru_.erase(it);
    ++stats_.evictions;
  };

  // Quota enforcement: evict this root's own oldest entries first (§2.9).
  while (root_usage_[quota_root] >= config_.per_root_quota) {
    for (auto it = std::prev(lru_.end());; --it) {
      if (it->quota_root == quota_root) {
        evict(it);
        break;
      }
      if (it == lru_.begin()) {
        break;
      }
    }
  }
  // Capacity: preferentially evict entries charged to the same principal,
  // falling back to global LRU.
  if (lru_.size() >= config_.proof_cache_capacity) {
    bool evicted = false;
    for (auto it = std::prev(lru_.end());; --it) {
      if (it->quota_root == quota_root) {
        evict(it);
        evicted = true;
        break;
      }
      if (it == lru_.begin()) {
        break;
      }
    }
    if (!evicted) {
      evict(std::prev(lru_.end()));
    }
  }

  lru_.push_front(CacheEntry{key, verdict, quota_root});
  cache_index_[key] = lru_.begin();
  root_usage_[quota_root] += 1;
}

kernel::AuthorizationEngine::Verdict Guard::Check(
    kernel::ProcessId subject, const std::string& operation, const std::string& object,
    const nal::Formula& goal, const nal::Proof& proof,
    const std::vector<nal::Formula>& credentials, uint64_t state_version) {
  ++stats_.checks;
  (void)operation;
  (void)object;

  if (goal == nullptr) {
    return {Internal("guard invoked without a goal"), false};
  }
  if (goal->kind() == nal::FormulaKind::kTrue) {
    return {OkStatus(), true};
  }
  if (proof == nullptr) {
    return {PermissionDenied("no proof supplied for goal " + goal->ToString()), true};
  }

  kernel::ProcessId quota_root = subject;
  if (Result<const kernel::Process*> p = kernel_->GetProcess(subject); p.ok()) {
    quota_root = (*p)->quota_root;
  }

  // Proof-cache lookup is sound only for proofs without authority leaves,
  // and only when the caller supplied a state version (the version stamp is
  // what ties a cached verdict to the credential set it was checked under).
  bool static_proof = nal::IsStaticallyCacheable(proof);
  bool may_cache = static_proof && state_version != 0;
  std::string cache_key;
  if (may_cache) {
    cache_key = goal->ToString();
    cache_key.push_back('\x1f');
    cache_key += std::to_string(reinterpret_cast<uintptr_t>(proof.get()));
    cache_key.push_back('\x1f');
    cache_key += std::to_string(state_version);
    auto it = cache_index_.find(cache_key);
    if (it != cache_index_.end()) {
      ++stats_.cache_hits;
      lru_.splice(lru_.begin(), lru_, it->second);  // LRU refresh.
      bool allowed = it->second->verdict;
      return {allowed ? OkStatus() : PermissionDenied("denied (cached proof verdict)"), true};
    }
  }

  nal::AuthorityCallback authority = [this](const nal::Formula& f) {
    return QueryAuthorities(f);
  };
  nal::CheckResult result = nal::CheckProof(proof, goal, credentials, authority);

  // A denial caused by a missing credential must not be cached anywhere:
  // the subject may acquire the label later without touching its proof.
  bool verdict_cacheable = result.cacheable && !result.missing_credential;
  if (may_cache && !result.missing_credential) {
    InsertCacheEntry(quota_root, cache_key, result.status.ok());
  }
  return {result.status, verdict_cacheable};
}

void Guard::FlushCache() {
  lru_.clear();
  cache_index_.clear();
  root_usage_.clear();
}

GuardPortHandler::GuardPortHandler(Guard* guard, const GoalStore* goals)
    : guard_(guard), goals_(goals) {}

kernel::IpcReply GuardPortHandler::Handle(const kernel::IpcContext& context,
                                          const kernel::IpcMessage& message) {
  // Protocol: check <subject> <operation> <object> <proof-text>, with
  // newline-separated credential formulas in `data`.
  if (message.operation != "check" || message.args.size() < 4) {
    return kernel::IpcReply{
        InvalidArgument("guard protocol: check <subject> <op> <object> <proof>"), {}, {}, 0};
  }
  (void)context;
  kernel::ProcessId subject = std::stoull(message.args[0]);
  const std::string& operation = message.args[1];
  const std::string& object = message.args[2];

  std::optional<GoalEntry> goal = goals_->Get(operation, object);
  if (!goal.has_value()) {
    return kernel::IpcReply{NotFound("no goal for this operation/object"), {}, {}, 0};
  }

  Result<nal::Proof> proof = nal::DeserializeProof(message.args[3]);
  if (!proof.ok()) {
    return kernel::IpcReply{proof.status(), {}, {}, 0};
  }

  std::vector<nal::Formula> credentials;
  std::string blob = ToString(message.data);
  size_t start = 0;
  while (start < blob.size()) {
    size_t end = blob.find('\n', start);
    if (end == std::string::npos) {
      end = blob.size();
    }
    if (end > start) {
      Result<nal::Formula> cred = nal::ParseFormula(blob.substr(start, end - start));
      if (!cred.ok()) {
        return kernel::IpcReply{cred.status(), {}, {}, 0};
      }
      credentials.push_back(*cred);
    }
    start = end + 1;
  }

  kernel::AuthorizationEngine::Verdict verdict =
      guard_->Check(subject, operation, object, goal->goal, *proof, credentials);
  return kernel::IpcReply{verdict.status, {}, {}, verdict.cacheable ? 1 : 0};
}

}  // namespace nexus::core
