// Arbitrary-precision unsigned integers for the RSA implementation.
//
// Little-endian 32-bit limbs with 64-bit intermediates. Division is Knuth's
// Algorithm D. Performance is adequate for simulation-grade RSA (the point
// of Fig. 6 is that signatures are orders of magnitude slower than
// system-backed credentials; a fast bignum would only shrink the gap).
#ifndef NEXUS_CRYPTO_BIGNUM_H_
#define NEXUS_CRYPTO_BIGNUM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"

namespace nexus::crypto {

class BigNum {
 public:
  BigNum() = default;
  explicit BigNum(uint64_t value);

  // Big-endian byte import/export.
  static BigNum FromBytes(ByteView bytes);
  Bytes ToBytes() const;

  // Random value with exactly `bits` bits (msb set), for prime candidates.
  static BigNum RandomWithBits(Rng& rng, int bits);
  // Random value uniform in [2, bound-2], for Miller-Rabin witnesses.
  static BigNum RandomBelow(Rng& rng, const BigNum& bound);

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1) != 0; }
  int BitLength() const;
  bool Bit(int index) const;

  // Three-way comparison: -1, 0, or 1.
  static int Compare(const BigNum& a, const BigNum& b);
  bool operator==(const BigNum& other) const { return Compare(*this, other) == 0; }
  bool operator<(const BigNum& other) const { return Compare(*this, other) < 0; }
  bool operator<=(const BigNum& other) const { return Compare(*this, other) <= 0; }

  static BigNum Add(const BigNum& a, const BigNum& b);
  // Requires a >= b.
  static BigNum Sub(const BigNum& a, const BigNum& b);
  static BigNum Mul(const BigNum& a, const BigNum& b);
  // Quotient and remainder; divisor must be nonzero.
  static void DivMod(const BigNum& dividend, const BigNum& divisor, BigNum& quotient,
                     BigNum& remainder);
  static BigNum Mod(const BigNum& a, const BigNum& modulus);

  static BigNum ModMul(const BigNum& a, const BigNum& b, const BigNum& modulus);
  static BigNum ModExp(const BigNum& base, const BigNum& exponent, const BigNum& modulus);
  // Modular inverse via extended Euclid; returns zero if gcd != 1.
  static BigNum ModInverse(const BigNum& a, const BigNum& modulus);
  static BigNum Gcd(const BigNum& a, const BigNum& b);

  BigNum ShiftLeft(int bits) const;
  BigNum ShiftRight(int bits) const;

  // Remainder modulo a small divisor (for trial division).
  uint32_t ModU32(uint32_t divisor) const;

  std::string ToHex() const;

 private:
  void Trim();

  std::vector<uint32_t> limbs_;  // Little-endian; no trailing zero limbs.
};

// Miller-Rabin probabilistic primality test.
bool IsProbablePrime(const BigNum& candidate, Rng& rng, int rounds = 16);

// Generates a random prime with exactly `bits` bits.
BigNum GeneratePrime(Rng& rng, int bits);

}  // namespace nexus::crypto

#endif  // NEXUS_CRYPTO_BIGNUM_H_
